"""Interval timeline: windowed metric deltas over one simulation run.

End-of-run aggregates hide phase behaviour — a workload whose miss rate
swings between 5% and 60% every few thousand records averages out to the
same number as a flat 30% workload, yet the two stress a DRAM cache very
differently.  :class:`TimelineObserver` attaches to
:meth:`repro.sim.engine.SimulationEngine.run` and snapshots windowed
*deltas* of the system's cumulative counters every ``interval_records``
processed records: per-window DRAM-cache hit ratio, in-package vs
off-package bandwidth split, writeback traffic, TLB behaviour, and a
memory-stall latency histogram.

Alignment guarantees:

* a window boundary is forced exactly at ``begin_measurement``, so the
  first *measured* window starts at the warmup boundary (windows inside
  warmup are kept, flagged ``phase="warmup"``);
* every quantity is derived from deterministic simulation state (record
  counts, simulated cycles, byte counters) — never host time — so the
  timeline of a cell is bit-identical whether it ran serially or in a
  worker process.

The resulting :class:`Timeline` is attached to
``SimulationResults.timeline`` (as its :meth:`Timeline.to_dict` form) and
round-trips exactly through dicts, CSV and JSONL.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.obs.metrics import DEFAULT_LATENCY_BOUNDS, Histogram

#: Default snapshot interval in processed records (across all cores).
DEFAULT_INTERVAL_RECORDS = 1000

PHASE_WARMUP = "warmup"
PHASE_MEASURE = "measure"

#: CSV header comment carrying the metadata columns cannot (see to_csv).
_CSV_MAGIC = "#repro-timeline"


@dataclass
class TimelineWindow:
    """Metric deltas for one record window ``[start_record, end_record)``."""

    index: int
    phase: str
    start_record: int
    end_record: int
    instructions: int
    cycles: float
    dram_cache_hits: int
    dram_cache_misses: int
    llc_misses: int
    llc_writebacks: int
    tlb_hits: int
    tlb_misses: int
    in_bytes: int
    off_bytes: int
    writeback_bytes: int
    latency_counts: List[int] = field(default_factory=list)

    # -------------------------------------------------------------- derived

    @property
    def records(self) -> int:
        return self.end_record - self.start_record

    @property
    def dram_cache_accesses(self) -> int:
        return self.dram_cache_hits + self.dram_cache_misses

    @property
    def hit_ratio(self) -> float:
        """DRAM-cache hit ratio inside this window (0 when idle)."""
        total = self.dram_cache_accesses
        return self.dram_cache_hits / total if total else 0.0

    @property
    def total_bytes(self) -> int:
        return self.in_bytes + self.off_bytes

    @property
    def off_fraction(self) -> float:
        """Share of this window's DRAM bytes that went off-package."""
        total = self.total_bytes
        return self.off_bytes / total if total else 0.0

    @property
    def tlb_miss_ratio(self) -> float:
        total = self.tlb_hits + self.tlb_misses
        return self.tlb_misses / total if total else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "phase": self.phase,
            "start_record": self.start_record,
            "end_record": self.end_record,
            "instructions": self.instructions,
            "cycles": self.cycles,
            "dram_cache_hits": self.dram_cache_hits,
            "dram_cache_misses": self.dram_cache_misses,
            "llc_misses": self.llc_misses,
            "llc_writebacks": self.llc_writebacks,
            "tlb_hits": self.tlb_hits,
            "tlb_misses": self.tlb_misses,
            "in_bytes": self.in_bytes,
            "off_bytes": self.off_bytes,
            "writeback_bytes": self.writeback_bytes,
            "latency_counts": list(self.latency_counts),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "TimelineWindow":
        data = dict(payload)
        data["latency_counts"] = list(data.get("latency_counts", []))
        return cls(**data)


#: CSV column order (latency_counts is pipe-joined into one column).
_CSV_COLUMNS = (
    "index", "phase", "start_record", "end_record", "instructions", "cycles",
    "dram_cache_hits", "dram_cache_misses", "llc_misses", "llc_writebacks",
    "tlb_hits", "tlb_misses", "in_bytes", "off_bytes", "writeback_bytes",
    "latency_counts",
)
_INT_COLUMNS = frozenset(_CSV_COLUMNS) - {"phase", "cycles", "latency_counts"}


class Timeline:
    """An ordered sequence of :class:`TimelineWindow` plus its parameters."""

    def __init__(
        self,
        interval_records: int,
        latency_bounds: Sequence[float] = DEFAULT_LATENCY_BOUNDS,
        windows: Optional[List[TimelineWindow]] = None,
    ) -> None:
        if interval_records <= 0:
            raise ValueError("interval_records must be positive")
        self.interval_records = interval_records
        self.latency_bounds = [float(b) for b in latency_bounds]
        self.windows: List[TimelineWindow] = list(windows or [])

    def __len__(self) -> int:
        return len(self.windows)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Timeline):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    @property
    def measured(self) -> List[TimelineWindow]:
        return [w for w in self.windows if w.phase == PHASE_MEASURE]

    @property
    def warmup(self) -> List[TimelineWindow]:
        return [w for w in self.windows if w.phase == PHASE_WARMUP]

    def totals(self, phase: Optional[str] = PHASE_MEASURE) -> Dict[str, float]:
        """Sum the additive columns over ``phase`` windows (None = all)."""
        selected = self.windows if phase is None else [w for w in self.windows if w.phase == phase]
        keys = ("instructions", "cycles", "dram_cache_hits", "dram_cache_misses",
                "llc_misses", "llc_writebacks", "tlb_hits", "tlb_misses",
                "in_bytes", "off_bytes", "writeback_bytes")
        totals: Dict[str, float] = {key: 0 for key in keys}
        for window in selected:
            for key in keys:
                totals[key] += getattr(window, key)
        return totals

    def summary(self) -> Dict[str, object]:
        """Compact description used by ``python -m repro.obs summarize``."""
        measured = self.measured
        ratios = [w.hit_ratio for w in measured if w.dram_cache_accesses]
        offs = [w.off_fraction for w in measured if w.total_bytes]
        histogram = Histogram("latency", self.latency_bounds)
        merged = [0] * (len(self.latency_bounds) + 1)
        for window in measured:
            for index, count in enumerate(window.latency_counts):
                merged[index] += count
        return {
            "windows": len(self.windows),
            "measured_windows": len(measured),
            "warmup_windows": len(self.warmup),
            "interval_records": self.interval_records,
            "hit_ratio_min": round(min(ratios), 4) if ratios else 0.0,
            "hit_ratio_mean": round(sum(ratios) / len(ratios), 4) if ratios else 0.0,
            "hit_ratio_max": round(max(ratios), 4) if ratios else 0.0,
            "off_fraction_min": round(min(offs), 4) if offs else 0.0,
            "off_fraction_max": round(max(offs), 4) if offs else 0.0,
            "latency_p50": histogram.quantile(0.5, merged),
            "latency_p95": histogram.quantile(0.95, merged),
        }

    # ------------------------------------------------------------ dict form

    def to_dict(self) -> Dict[str, object]:
        return {
            "interval_records": self.interval_records,
            "latency_bounds": list(self.latency_bounds),
            "windows": [window.to_dict() for window in self.windows],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Timeline":
        return cls(
            interval_records=payload["interval_records"],
            latency_bounds=payload["latency_bounds"],
            windows=[TimelineWindow.from_dict(w) for w in payload.get("windows", [])],
        )

    # ------------------------------------------------------------- CSV form

    def to_csv(self) -> str:
        """Serialise to CSV with a leading ``#`` metadata comment line.

        Floats are written with ``repr`` (shortest round-trip), so
        :meth:`from_csv` reconstructs the exact timeline.  The comment line
        carries the interval and bucket bounds; CSV consumers that honour
        ``comment='#'`` (pandas, gnuplot) skip it transparently.
        """
        buffer = io.StringIO()
        bounds = "|".join(repr(b) for b in self.latency_bounds)
        buffer.write(f"{_CSV_MAGIC} interval_records={self.interval_records} "
                     f"latency_bounds={bounds}\n")
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(_CSV_COLUMNS)
        for window in self.windows:
            row = window.to_dict()
            writer.writerow([
                "|".join(str(c) for c in row["latency_counts"])
                if column == "latency_counts"
                else repr(row["cycles"]) if column == "cycles"
                else row[column]
                for column in _CSV_COLUMNS
            ])
        return buffer.getvalue()

    @classmethod
    def from_csv(cls, text: str) -> "Timeline":
        lines = text.splitlines()
        if not lines or not lines[0].startswith(_CSV_MAGIC):
            raise ValueError(f"not a timeline CSV (missing {_CSV_MAGIC!r} header)")
        meta: Dict[str, str] = {}
        for token in lines[0][len(_CSV_MAGIC):].split():
            name, _, value = token.partition("=")
            meta[name] = value
        interval = int(meta["interval_records"])
        bounds = [float(b) for b in meta["latency_bounds"].split("|")]
        windows: List[TimelineWindow] = []
        for row in csv.DictReader(lines[1:]):
            payload: Dict[str, object] = {}
            for column in _CSV_COLUMNS:
                value = row[column]
                if column == "latency_counts":
                    payload[column] = [int(c) for c in value.split("|")] if value else []
                elif column == "cycles":
                    payload[column] = float(value)
                elif column in _INT_COLUMNS:
                    payload[column] = int(value)
                else:
                    payload[column] = value
            windows.append(TimelineWindow.from_dict(payload))
        return cls(interval_records=interval, latency_bounds=bounds, windows=windows)

    # ----------------------------------------------------------- JSONL form

    def to_jsonl(self) -> str:
        """One metadata line followed by one JSON line per window."""
        lines = [json.dumps({
            "meta": {
                "interval_records": self.interval_records,
                "latency_bounds": self.latency_bounds,
            }
        }, sort_keys=True)]
        lines.extend(json.dumps(w.to_dict(), sort_keys=True) for w in self.windows)
        return "\n".join(lines) + "\n"

    @classmethod
    def from_jsonl(cls, text: str) -> "Timeline":
        lines = [line for line in text.splitlines() if line.strip()]
        if not lines:
            raise ValueError("empty timeline JSONL")
        header = json.loads(lines[0])
        if "meta" not in header:
            raise ValueError("timeline JSONL must start with a meta line")
        meta = header["meta"]
        return cls(
            interval_records=meta["interval_records"],
            latency_bounds=meta["latency_bounds"],
            windows=[TimelineWindow.from_dict(json.loads(line)) for line in lines[1:]],
        )


class TimelineObserver:
    """Engine-side observer producing a :class:`Timeline` for one run.

    The engine calls :meth:`begin` before the first record,
    :meth:`start_measurement` when the warmup boundary fires,
    :meth:`snapshot` at each interval boundary and :meth:`finish` after the
    last record.  Between boundaries the only per-record work is the
    latency histogram's ``observe`` — wired into
    :class:`~repro.sim.system.System` as an optional hook that stays
    ``None`` (one check, zero cost) when no observer is attached.
    """

    def __init__(
        self,
        interval_records: int = DEFAULT_INTERVAL_RECORDS,
        latency_bounds: Sequence[float] = DEFAULT_LATENCY_BOUNDS,
    ) -> None:
        if interval_records <= 0:
            raise ValueError("interval_records must be positive")
        self.interval = interval_records
        self.latency_bounds = [float(b) for b in latency_bounds]
        self.timeline = Timeline(interval_records, self.latency_bounds)
        self._system = None
        self._histogram = Histogram("memory_stall_cycles", self.latency_bounds)
        self._phase = PHASE_MEASURE
        self._window_start = 0
        self._last: Dict[str, object] = {}

    # ----------------------------------------------------------- engine API

    def begin(self, system, warmup: bool = False, start_record: int = 0) -> None:
        """Attach to ``system`` and open the first window.

        ``start_record`` is non-zero only when the engine resumes from a
        snapshot: the first window then opens at the resume point instead
        of record 0 (earlier windows belong to the original run).
        """
        self._system = system
        self._histogram = Histogram("memory_stall_cycles", self.latency_bounds)
        self.timeline = Timeline(self.interval, self.latency_bounds)
        self._phase = PHASE_WARMUP if warmup else PHASE_MEASURE
        self._window_start = start_record
        self._last = self._read()
        system._obs_latency_hook = self._histogram.observe

    def start_measurement(self, processed: int) -> None:
        """Force a window boundary exactly at the warmup/measurement edge."""
        self._close_window(processed)
        self._phase = PHASE_MEASURE

    def snapshot(self, processed: int) -> None:
        """Close the current window at ``processed`` records."""
        self._close_window(processed)

    def finish(self, processed: int) -> None:
        """Close any partial final window and detach from the system."""
        self._close_window(processed)
        if self._system is not None:
            self._system._obs_latency_hook = None
            self._system = None

    # ------------------------------------------------------------ internals

    def _read(self) -> Dict[str, object]:
        """Cumulative counter snapshot (everything windows are deltas of)."""
        system = self._system
        scheme_stats = system.scheme.stats
        return {
            "instructions": sum(core.stats.instructions for core in system.cores),
            "cycles": max((core.clock for core in system.cores), default=0.0),
            "hits": scheme_stats.get("dram_cache_hits"),
            "misses": scheme_stats.get("dram_cache_misses"),
            "llc_misses": system.llc_misses,
            "llc_writebacks": system.llc_writebacks,
            "tlb_hits": sum(tlb.hits for tlb in system.tlbs),
            "tlb_misses": sum(tlb.misses for tlb in system.tlbs),
            "in_traffic": dict(system.in_dram.traffic.breakdown()),
            "off_traffic": dict(system.off_dram.traffic.breakdown()),
            "latency_counts": self._histogram.snapshot(),
        }

    def _close_window(self, processed: int) -> None:
        if processed <= self._window_start:
            return
        now = self._read()
        last = self._last
        in_delta = {key: value - last["in_traffic"].get(key, 0)
                    for key, value in now["in_traffic"].items()}
        off_delta = {key: value - last["off_traffic"].get(key, 0)
                     for key, value in now["off_traffic"].items()}
        writeback = in_delta.get("Writeback", 0) + off_delta.get("Writeback", 0)
        self.timeline.windows.append(TimelineWindow(
            index=len(self.timeline.windows),
            phase=self._phase,
            start_record=self._window_start,
            end_record=processed,
            instructions=int(now["instructions"] - last["instructions"]),
            cycles=now["cycles"] - last["cycles"],
            dram_cache_hits=int(now["hits"] - last["hits"]),
            dram_cache_misses=int(now["misses"] - last["misses"]),
            llc_misses=now["llc_misses"] - last["llc_misses"],
            llc_writebacks=now["llc_writebacks"] - last["llc_writebacks"],
            tlb_hits=now["tlb_hits"] - last["tlb_hits"],
            tlb_misses=now["tlb_misses"] - last["tlb_misses"],
            in_bytes=sum(in_delta.values()),
            off_bytes=sum(off_delta.values()),
            writeback_bytes=writeback,
            latency_counts=[now_c - last_c for now_c, last_c
                            in zip(now["latency_counts"], last["latency_counts"])],
        ))
        self._window_start = processed
        self._last = now
