"""Observability: interval-timeline metrics, run events, live telemetry.

The layer every other subsystem reports through:

* :mod:`repro.obs.metrics` — counters, gauges and fixed-bucket histograms
  (:class:`MetricsRegistry`), built so detached instrumentation costs the
  hot loop a single ``is None`` check;
* :mod:`repro.obs.timeline` — :class:`TimelineObserver` snapshots windowed
  metric deltas during a run, yielding a :class:`Timeline` attached to
  ``SimulationResults.timeline`` (exact CSV/JSONL round-trip);
* :mod:`repro.obs.events` — append-only JSONL event logs
  (:class:`EventLog`) with schema validation and merge, plus
  :class:`ObsSink` bundling a campaign's event/heartbeat destinations;
* :mod:`repro.obs.heartbeat` — per-worker liveness files behind
  ``python -m repro.campaign status --live``;
* :mod:`repro.obs.snapshot` — :class:`EngineSnapshot` serializes full
  engine state at a record boundary; restoring resumes bit-identically in
  every engine mode (and backs campaign warmup checkpointing);
* :mod:`repro.obs.watch` — :class:`Watchpoint`/:class:`WatchSession`
  declarative triggers on addresses, pages and cache sets emitting
  fill/evict/writeback/touch events;
* :mod:`repro.obs.inspect` — :class:`InspectorServer`/:class:`InspectorClient`
  file-mailbox attach protocol (pause, step, dump, watch a live run);
* :mod:`repro.obs.export_chrome` — Chrome trace-event JSON export of
  timelines, events and watch hits (open in Perfetto);
* ``python -m repro.obs`` (:mod:`repro.obs.cli`) summarizes, merges,
  exports, attaches and replays all of the above.
"""

from repro.obs.events import (
    EVENT_TYPES,
    EventLog,
    ObsSink,
    make_event,
    merge_events,
    read_events,
    validate_event,
    write_events,
)
from repro.obs.export_chrome import events_to_trace, timeline_to_trace, write_trace
from repro.obs.heartbeat import HeartbeatWriter, is_stale, read_heartbeats
from repro.obs.inspect import InspectorClient, InspectorServer
from repro.obs.metrics import (
    DEFAULT_LATENCY_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.snapshot import EngineSnapshot, capture, capture_cursor, register_scheme_codec
from repro.obs.timeline import (
    DEFAULT_INTERVAL_RECORDS,
    Timeline,
    TimelineObserver,
    TimelineWindow,
)
from repro.obs.watch import WatchSession, Watchpoint

__all__ = [
    "DEFAULT_INTERVAL_RECORDS",
    "DEFAULT_LATENCY_BOUNDS",
    "EVENT_TYPES",
    "Counter",
    "EngineSnapshot",
    "EventLog",
    "Gauge",
    "HeartbeatWriter",
    "Histogram",
    "InspectorClient",
    "InspectorServer",
    "MetricsRegistry",
    "ObsSink",
    "Timeline",
    "TimelineObserver",
    "TimelineWindow",
    "WatchSession",
    "Watchpoint",
    "capture",
    "capture_cursor",
    "events_to_trace",
    "is_stale",
    "make_event",
    "merge_events",
    "read_events",
    "read_heartbeats",
    "register_scheme_codec",
    "timeline_to_trace",
    "validate_event",
    "write_events",
    "write_trace",
]
