"""Observability: interval-timeline metrics, run events, live telemetry.

The layer every other subsystem reports through:

* :mod:`repro.obs.metrics` — counters, gauges and fixed-bucket histograms
  (:class:`MetricsRegistry`), built so detached instrumentation costs the
  hot loop a single ``is None`` check;
* :mod:`repro.obs.timeline` — :class:`TimelineObserver` snapshots windowed
  metric deltas during a run, yielding a :class:`Timeline` attached to
  ``SimulationResults.timeline`` (exact CSV/JSONL round-trip);
* :mod:`repro.obs.events` — append-only JSONL event logs
  (:class:`EventLog`) with schema validation and merge, plus
  :class:`ObsSink` bundling a campaign's event/heartbeat destinations;
* :mod:`repro.obs.heartbeat` — per-worker liveness files behind
  ``python -m repro.campaign status --live``;
* ``python -m repro.obs`` (:mod:`repro.obs.cli`) summarizes, merges and
  exports all of the above.
"""

from repro.obs.events import (
    EVENT_TYPES,
    EventLog,
    ObsSink,
    make_event,
    merge_events,
    read_events,
    validate_event,
    write_events,
)
from repro.obs.heartbeat import HeartbeatWriter, is_stale, read_heartbeats
from repro.obs.metrics import (
    DEFAULT_LATENCY_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.timeline import (
    DEFAULT_INTERVAL_RECORDS,
    Timeline,
    TimelineObserver,
    TimelineWindow,
)

__all__ = [
    "DEFAULT_INTERVAL_RECORDS",
    "DEFAULT_LATENCY_BOUNDS",
    "EVENT_TYPES",
    "Counter",
    "EventLog",
    "Gauge",
    "HeartbeatWriter",
    "Histogram",
    "MetricsRegistry",
    "ObsSink",
    "Timeline",
    "TimelineObserver",
    "TimelineWindow",
    "is_stale",
    "make_event",
    "merge_events",
    "read_events",
    "read_heartbeats",
    "validate_event",
    "write_events",
]
