"""Attachable engine inspector: a file-mailbox control channel.

No sockets: the simulating process and the attaching client share a
directory (HSX-mailbox style).  The server — an
:class:`~repro.sim.batch.RunController` riding the engine's run-cut edges —
keeps ``state.json`` fresh, consumes ``cmd-<seq>.json`` files, and answers
each with ``reply-<seq>.json``.  All writes are atomic (write-temp +
rename), so neither side ever reads a partial file.

Commands::

    state                  current progress + scheme stats
    pause [at]             pause at the next edge (or at record ``at``)
    resume                 leave the paused state
    step [n]               run ``n`` more records (default 1), pause again
    dump [path]            capture an engine snapshot to ``path``
    watch  {spec}          install a watchpoint (``kind:value[:hits]``)
    unwatch {wid}          remove a watchpoint
    watches                list installed watchpoints
    quit                   stop the run early

While paused the server blocks inside ``on_edge`` polling the mailbox, so
the engine is frozen between two records and every ``state``/``dump``
observation is exact.  Between edges a detached engine pays nothing and an
attached one only an extra run cut every ``poll_records`` records.

``python -m repro.obs attach <dir>`` is the interactive client;
``python -m repro.obs replay <snapshot>`` rebuilds an engine from a saved
snapshot and re-runs the remainder (time-travel on top of trace replay).
"""

from __future__ import annotations

import json
import os
import re
import tempfile
import time
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from repro.obs.snapshot import capture_cursor
from repro.obs.watch import WatchSession, Watchpoint
from repro.sim.batch import EngineCursor, RunController

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.events import EventLog

#: Default records between mailbox polls (one extra run cut per poll).
DEFAULT_POLL_RECORDS = 50_000

#: Seconds between mailbox scans while paused / while a client waits.
POLL_SECONDS = 0.05

_CMD_RE = re.compile(r"^cmd-(\d+)\.json$")


def _write_json_atomic(path: Path, payload: Dict[str, Any]) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(prefix=".mbox-", dir=str(path.parent))
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        os.replace(tmp, str(path))
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _read_json(path: Path) -> Optional[Dict[str, Any]]:
    try:
        with path.open("r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None


class InspectorServer(RunController):
    """Engine-side half of the mailbox protocol.

    Construct with the control directory, attach an (optional but
    recommended) :class:`~repro.obs.watch.WatchSession`, and pass the server
    as ``engine.run(..., controller=server)``.  The watch session must be
    attached to the system *before* the run starts — the batch engine
    decides at run start whether the inline hit path is safe, so a hook
    installed mid-run would miss inlined records.
    """

    def __init__(
        self,
        control_dir: Any,
        watch: Optional[WatchSession] = None,
        events: Optional["EventLog"] = None,
        poll_records: int = DEFAULT_POLL_RECORDS,
        pause_at: Optional[int] = None,
        workload_meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        if poll_records <= 0:
            raise ValueError("poll_records must be positive")
        self.dir = Path(control_dir)
        self.dir.mkdir(parents=True, exist_ok=True)
        self.watch = watch
        self.events = events
        self.poll_records = poll_records
        self.workload_meta = workload_meta
        #: Snapshot files written by ``dump`` commands.
        self.snapshots: List[str] = []
        # Pause target: None = run freely; N = pause at the first edge with
        # processed >= N (0 = pause at the very next edge).
        self._pause_at = pause_at
        self._quit = False
        self._dump_seq = 0

    # ----------------------------------------------------------- controller

    def next_stop(self, processed: int) -> Optional[int]:
        if self._quit:
            return None
        stop = processed + self.poll_records
        if self._pause_at is not None and processed < self._pause_at < stop:
            stop = self._pause_at
        if self.watch is not None:
            watch_stop = self.watch.next_stop(processed)
            if watch_stop is not None and watch_stop < stop:
                stop = watch_stop
        return stop

    def on_edge(self, cursor: EngineCursor) -> bool:
        if self.watch is not None:
            self.watch.flush()
        self._write_state(cursor, "running")
        action = self._drain(cursor)
        if action == "quit":
            return True
        if self._pause_at is not None and cursor.processed >= self._pause_at:
            return self._pause_loop(cursor)
        return False

    def on_finish(self, cursor: EngineCursor) -> None:
        if self.watch is not None:
            self.watch.flush()
        self._write_state(cursor, "finished")

    # -------------------------------------------------------------- mailbox

    def _write_state(self, cursor: EngineCursor, status: str) -> None:
        system = cursor.system
        state: Dict[str, Any] = {
            "pid": os.getpid(),
            "status": status,
            "processed": cursor.processed,
            "consumed_per_core": list(cursor.consumed_per_core),
            "measurement_started": cursor.measurement_started,
            "workload": system.workload.name,
            "scheme": system.scheme.name,
            "updated": time.time(),
        }
        if self.watch is not None:
            state["watchpoints"] = [w.describe() for w in self.watch.watchpoints]
            state["watch_hits"] = len(self.watch.hits)
        _write_json_atomic(self.dir / "state.json", state)

    def _pending_commands(self) -> List[Path]:
        try:
            names = os.listdir(str(self.dir))
        except OSError:
            return []
        commands = []
        for name in names:
            match = _CMD_RE.match(name)
            if match:
                commands.append((int(match.group(1)), self.dir / name))
        commands.sort()
        return [path for _seq, path in commands]

    def _drain(self, cursor: EngineCursor) -> Optional[str]:
        """Process every queued command; returns 'quit'/'resume' or None."""
        action: Optional[str] = None
        for path in self._pending_commands():
            command = _read_json(path)
            try:
                path.unlink()
            except OSError:
                pass
            if command is None:
                continue
            result = self._handle(command, cursor)
            if result in ("quit", "resume"):
                action = result
        return action

    def _handle(self, command: Dict[str, Any], cursor: EngineCursor) -> Optional[str]:
        seq = command.get("seq", 0)
        name = command.get("cmd")
        try:
            reply, action = self._dispatch(name, command, cursor)
            reply.setdefault("ok", True)
        except Exception as error:  # reply instead of killing the run
            reply, action = {"ok": False, "error": str(error)}, None
        reply["seq"] = seq
        reply["cmd"] = name
        _write_json_atomic(self.dir / f"reply-{seq}.json", reply)
        return action

    def _dispatch(
        self, name: Optional[str], command: Dict[str, Any], cursor: EngineCursor
    ) -> Any:
        if name == "state":
            return self._state_payload(cursor), None
        if name == "pause":
            at = command.get("at")
            self._pause_at = int(at) if at is not None else 0
            return {"pause_at": self._pause_at}, None
        if name == "resume":
            self._pause_at = None
            return {}, "resume"
        if name == "step":
            n = int(command.get("n", 1))
            if n <= 0:
                raise ValueError("step count must be positive")
            self._pause_at = cursor.processed + n
            return {"pause_at": self._pause_at}, "resume"
        if name == "dump":
            path = command.get("path")
            if path is None:
                self._dump_seq += 1
                path = str(self.dir / f"snapshot-{cursor.processed}-{self._dump_seq}.json")
            snapshot = capture_cursor(cursor, workload_meta=self.workload_meta)
            snapshot.save(str(path))
            self.snapshots.append(str(path))
            if self.events is not None:
                self.events.emit(
                    "snapshot_saved", path=str(path), records=cursor.processed
                )
            return {"path": str(path), "processed": cursor.processed}, None
        if name == "watch":
            if self.watch is None:
                raise ValueError(
                    "no watch session attached to this run; enable watchpoints "
                    "at launch (e.g. --inspect) so the hook observes every record"
                )
            watchpoint = Watchpoint.parse(command["spec"], wid=command.get("wid"))
            self.watch.add(watchpoint)
            return {"watch": watchpoint.describe()}, None
        if name == "unwatch":
            if self.watch is None:
                raise ValueError("no watch session attached to this run")
            removed = self.watch.remove(command["wid"])
            return {"removed": removed}, None
        if name == "watches":
            if self.watch is None:
                return {"watchpoints": [], "hits": 0}, None
            summary = self.watch.summary()
            return summary, None
        if name == "quit":
            self._quit = True
            return {}, "quit"
        raise ValueError(f"unknown command {name!r}")

    def _state_payload(self, cursor: EngineCursor) -> Dict[str, Any]:
        system = cursor.system
        payload: Dict[str, Any] = {
            "processed": cursor.processed,
            "consumed_per_core": list(cursor.consumed_per_core),
            "measurement_started": cursor.measurement_started,
            "workload": system.workload.name,
            "scheme": system.scheme.name,
            "core_clocks": [core.clock for core in system.cores],
            "llc_misses": system.llc_misses,
            "llc_writebacks": system.llc_writebacks,
            "scheme_stats": {
                key: value for key, value in system.scheme.stats._counters.items()
            },
        }
        if self.watch is not None:
            payload["watch"] = self.watch.summary()
        return payload

    def _pause_loop(self, cursor: EngineCursor) -> bool:
        """Block between two records until a resume/step/quit arrives."""
        self._pause_at = None
        self._write_state(cursor, "paused")
        if self.events is not None:
            self.events.emit("inspect_pause", records=cursor.processed)
        while True:
            action = self._drain(cursor)
            if action == "quit":
                return True
            if action == "resume":
                if self.events is not None:
                    self.events.emit("inspect_resume", records=cursor.processed)
                self._write_state(cursor, "running")
                return False
            time.sleep(POLL_SECONDS)


class InspectorClient:
    """Client-side half: writes commands, waits for replies."""

    def __init__(self, control_dir: Any, timeout: float = 30.0) -> None:
        self.dir = Path(control_dir)
        self.timeout = timeout
        self._seq = self._next_seq()

    def _next_seq(self) -> int:
        highest = 0
        try:
            names = os.listdir(str(self.dir))
        except OSError:
            return 1
        for name in names:
            match = re.match(r"^(?:cmd|reply)-(\d+)\.json$", name)
            if match:
                highest = max(highest, int(match.group(1)))
        return highest + 1

    def state(self) -> Optional[Dict[str, Any]]:
        """Read the server's last published state (no round-trip)."""
        return _read_json(self.dir / "state.json")

    def request(self, cmd: str, **args: Any) -> Dict[str, Any]:
        """Send one command and wait for its reply."""
        seq = self._seq
        self._seq += 1
        payload = {"seq": seq, "cmd": cmd}
        payload.update(args)
        _write_json_atomic(self.dir / f"cmd-{seq}.json", payload)
        reply_path = self.dir / f"reply-{seq}.json"
        deadline = time.monotonic() + self.timeout
        while time.monotonic() < deadline:
            if reply_path.exists():
                reply = _read_json(reply_path)
                if reply is not None:
                    try:
                        reply_path.unlink()
                    except OSError:
                        pass
                    return reply
            time.sleep(POLL_SECONDS)
        raise TimeoutError(
            f"no reply to {cmd!r} within {self.timeout}s; is the run still "
            f"alive? (state: {self.state()})"
        )

    def wait_for_status(self, status: str, timeout: Optional[float] = None) -> Dict[str, Any]:
        """Block until ``state.json`` reports ``status``; returns the state."""
        deadline = time.monotonic() + (timeout if timeout is not None else self.timeout)
        while time.monotonic() < deadline:
            state = self.state()
            if state is not None and state.get("status") == status:
                return state
            time.sleep(POLL_SECONDS)
        raise TimeoutError(f"server never reached status {status!r} (state: {self.state()})")
