"""Small shared utilities: bit math, unit helpers, deterministic RNG."""

from repro.util.bits import align_down, align_up, is_power_of_two, log2_exact
from repro.util.rng import DeterministicRng
from repro.util.units import GB, GHZ_TO_HZ, KB, MB, cycles_from_ns, ns_from_us

__all__ = [
    "align_down",
    "align_up",
    "is_power_of_two",
    "log2_exact",
    "DeterministicRng",
    "KB",
    "MB",
    "GB",
    "GHZ_TO_HZ",
    "cycles_from_ns",
    "ns_from_us",
]
