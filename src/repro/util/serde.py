"""Shared dataclass <-> dict deserialization helper."""

from __future__ import annotations

import dataclasses
from typing import Dict, Type, TypeVar

T = TypeVar("T")


def dataclass_from_dict(cls: Type[T], payload: Dict) -> T:
    """Construct ``cls`` from a dict, rejecting unknown keys loudly.

    A payload written by a newer code version should fail rather than be
    silently truncated; missing optional fields still fall back to their
    dataclass defaults so old serialized forms keep loading.
    """
    known = {field.name for field in dataclasses.fields(cls)}
    unknown = set(payload) - known
    if unknown:
        raise ValueError(f"unknown {cls.__name__} fields: {sorted(unknown)}")
    return cls(**payload)
