"""Size and time unit helpers.

The simulator works internally in CPU cycles and bytes.  These helpers keep
conversions between wall-clock units (ns, us, ms) and cycles in one place so
the latency parameters in :mod:`repro.sim.config` stay readable.
"""

from __future__ import annotations

KB = 1024
MB = 1024 * KB
GB = 1024 * MB

GHZ_TO_HZ = 1_000_000_000


def cycles_from_ns(nanoseconds: float, freq_ghz: float) -> int:
    """Convert a latency in nanoseconds to CPU cycles at ``freq_ghz``."""
    if freq_ghz <= 0:
        raise ValueError(f"frequency must be positive, got {freq_ghz}")
    return int(round(nanoseconds * freq_ghz))


def cycles_from_us(microseconds: float, freq_ghz: float) -> int:
    """Convert a latency in microseconds to CPU cycles at ``freq_ghz``."""
    return cycles_from_ns(microseconds * 1000.0, freq_ghz)


def cycles_from_ms(milliseconds: float, freq_ghz: float) -> int:
    """Convert a latency in milliseconds to CPU cycles at ``freq_ghz``."""
    return cycles_from_ns(milliseconds * 1_000_000.0, freq_ghz)


def ns_from_us(microseconds: float) -> float:
    """Convert microseconds to nanoseconds."""
    return microseconds * 1000.0


def bytes_per_cycle(bandwidth_gb_per_s: float, freq_ghz: float) -> float:
    """Convert a bandwidth in GB/s into bytes per CPU cycle."""
    if freq_ghz <= 0:
        raise ValueError(f"frequency must be positive, got {freq_ghz}")
    return bandwidth_gb_per_s / freq_ghz
