"""Bit-manipulation helpers used by the cache and DRAM models.

All capacities, line sizes and page sizes in the simulator are powers of two,
so index/tag extraction is done with exact log2 arithmetic.  These helpers
raise ``ValueError`` early instead of silently mis-indexing.
"""

from __future__ import annotations


def is_power_of_two(value: int) -> bool:
    """Return True if ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def log2_exact(value: int) -> int:
    """Return log2 of ``value``, requiring it to be an exact power of two.

    Raises:
        ValueError: if ``value`` is not a positive power of two.
    """
    if not is_power_of_two(value):
        raise ValueError(f"expected a positive power of two, got {value}")
    return value.bit_length() - 1


def align_down(value: int, alignment: int) -> int:
    """Round ``value`` down to a multiple of ``alignment`` (a power of two)."""
    if not is_power_of_two(alignment):
        raise ValueError(f"alignment must be a power of two, got {alignment}")
    return value & ~(alignment - 1)


def align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to a multiple of ``alignment`` (a power of two)."""
    if not is_power_of_two(alignment):
        raise ValueError(f"alignment must be a power of two, got {alignment}")
    return (value + alignment - 1) & ~(alignment - 1)
