"""Deterministic random number generation.

Every stochastic component of the simulator (sampling decisions, stochastic
replacement, workload generation) draws from a :class:`DeterministicRng`
seeded from the system configuration, so simulations are reproducible
run-to-run and results in EXPERIMENTS.md can be regenerated exactly.
"""

from __future__ import annotations

from typing import Any, Sequence, TypeVar

import numpy as np

T = TypeVar("T")


class DeterministicRng:
    """A thin wrapper over :class:`numpy.random.Generator`.

    The wrapper exists so that (a) all call sites share the same seeding
    discipline, (b) child streams can be forked deterministically per
    component, and (c) the hot-path helpers (:meth:`chance`) stay cheap.
    """

    def __init__(self, seed: int) -> None:
        self._seed = int(seed)
        self._gen = np.random.default_rng(self._seed)

    @property
    def seed(self) -> int:
        """Seed this generator was created with."""
        return self._seed

    def fork(self, salt: int) -> "DeterministicRng":
        """Create an independent child stream identified by ``salt``."""
        return DeterministicRng((self._seed * 1_000_003 + int(salt)) & 0x7FFFFFFF)

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return float(self._gen.random())

    def chance(self, probability: float) -> bool:
        """Return True with the given probability."""
        if probability <= 0.0:
            return False
        if probability >= 1.0:
            return True
        return self._gen.random() < probability

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high)."""
        return int(self._gen.integers(low, high))

    def choice(self, sequence: Sequence[T]) -> T:
        """Pick one element of a non-empty sequence uniformly."""
        if len(sequence) == 0:
            raise ValueError("cannot choose from an empty sequence")
        return sequence[self.randint(0, len(sequence))]

    def shuffle(self, array: Any) -> None:
        """Shuffle a numpy array or list in place."""
        self._gen.shuffle(array)

    @property
    def generator(self) -> np.random.Generator:
        """Access the underlying numpy generator for bulk draws."""
        return self._gen
