"""Default parameters for the benchmark harness.

The benchmark suite regenerates every table and figure of the paper on a
scaled-down system (DESIGN.md §2).  Runtime is controlled by two knobs that
can be overridden through environment variables without touching code:

* ``REPRO_BENCH_RECORDS`` — trace records per core per simulation
  (default 30 000; the paper simulates 100 G instructions, which is far out
  of reach for pure Python but unnecessary for the comparative shapes).
* ``REPRO_BENCH_CORES`` — number of simulated cores (default 4; the paper
  uses 16 with 4x the DRAM bandwidth, i.e. the same bandwidth per core).
"""

from __future__ import annotations

import dataclasses
import os
from typing import Dict, List, Optional, Tuple

from repro.dramcache.variants import all_variants
from repro.sim.config import SystemConfig

#: (label, scheme name, DramCacheConfig overrides) in the order of Figure 4.
FIGURE4_SCHEMES: List[Tuple[str, str, Dict]] = [
    ("Unison", "unison", {}),
    ("TDC", "tdc", {}),
    ("Alloy 1", "alloy", {"alloy_replacement_probability": 1.0}),
    ("Alloy 0.1", "alloy", {"alloy_replacement_probability": 0.1}),
    ("Banshee", "banshee", {}),
    ("CacheOnly", "cacheonly", {}),
]

#: Workload subset used by the parameter sweeps (Figures 8/9, Tables 5/6).
SWEEP_WORKLOADS: List[str] = ["pagerank", "mcf", "omnetpp", "lbm"]

#: Scheme/variant names per sensitivity axis (the Sections 5-6 sweeps).
#: Every entry resolves through the variant registry, so a whole axis runs
#: through ``python -m repro.campaign run --schemes <names>`` (or a
#: ``SweepGrid``) with zero new scheme code; the base scheme is included as
#: each axis's reference point.
SENSITIVITY_AXES: Dict[str, List[str]] = {
    "tag-buffer": ["banshee-tb128", "banshee", "banshee-tb4k"],
    "sampling": ["banshee-sample01", "banshee", "banshee-sample32", "banshee-nosample"],
    "associativity": ["banshee-2way", "banshee", "banshee-8way", "unison-2way", "unison"],
    "page-size": ["banshee", "banshee-2kpage", "unison", "unison-2kpage", "unison-8kpage"],
    "replacement": ["banshee", "banshee-lru", "banshee-nosample"],
}


def sensitivity_schemes(axis: str) -> List[str]:
    """The scheme/variant names of one sensitivity axis, in sweep order."""
    if axis not in SENSITIVITY_AXES:
        raise ValueError(f"unknown sensitivity axis {axis!r}; available: {sorted(SENSITIVITY_AXES)}")
    return list(SENSITIVITY_AXES[axis])


def sensitivity_variant_names() -> List[str]:
    """Every registered variant name (for exhaustive sweeps and tests)."""
    return sorted(all_variants())

BENCH_RECORDS_PER_CORE = int(os.environ.get("REPRO_BENCH_RECORDS", "30000"))
BENCH_NUM_CORES = int(os.environ.get("REPRO_BENCH_CORES", "4"))


def bench_records_per_core(fraction: float = 1.0) -> int:
    """Records per core for a bench, optionally reduced for wide sweeps."""
    return max(2000, int(BENCH_RECORDS_PER_CORE * fraction))


def bench_config(scheme: str, num_cores: Optional[int] = None, seed: int = 1, **dram_cache_overrides) -> SystemConfig:
    """The scaled benchmark configuration for ``scheme`` with optional overrides."""
    cores = num_cores if num_cores is not None else BENCH_NUM_CORES
    config = SystemConfig.scaled_default(scheme=scheme, num_cores=cores, seed=seed)
    if dram_cache_overrides:
        config = config.with_scheme(scheme, **dram_cache_overrides)
    return config


def scale_in_package(config: SystemConfig, latency_scale: float = 1.0, bandwidth_scale: float = 1.0) -> SystemConfig:
    """Return a config whose in-package DRAM latency/bandwidth are scaled (Figure 8).

    The factors are applied on top of whatever scaling the base configuration
    already carries (the scaled preset reduces bandwidth per core to match the
    paper's 16-core system).
    """
    in_dram = dataclasses.replace(
        config.in_package_dram,
        latency_scale=config.in_package_dram.latency_scale * latency_scale,
        bandwidth_scale=config.in_package_dram.bandwidth_scale * bandwidth_scale,
    )
    return dataclasses.replace(config, in_package_dram=in_dram)
