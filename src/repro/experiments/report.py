"""Plain-text table formatting for experiment output.

The benchmark harness prints the reproduced tables and figure data as ASCII
tables so that ``pytest benchmarks/ --benchmark-only -s`` output can be read
side by side with the paper and copied into EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def _format_cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence], title: str = "") -> str:
    """Format ``rows`` under ``headers`` as an aligned ASCII table."""
    str_rows: List[List[str]] = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in str_rows:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[index]) for index, cell in enumerate(cells))

    parts = []
    if title:
        parts.append(title)
    parts.append(line(list(headers)))
    parts.append(line(["-" * width for width in widths]))
    parts.extend(line(row) for row in str_rows)
    return "\n".join(parts)


def rows_from_dicts(dict_rows: Iterable[dict], columns: Sequence[str]) -> List[List]:
    """Project a list of dict rows onto an ordered column list."""
    return [[row.get(column, "") for column in columns] for row in dict_rows]
