"""Simulation runner with result caching.

Several figures of the paper share the same underlying simulations (the
speedup, in-package-traffic and off-package-traffic figures all come from one
workload x scheme matrix).  :class:`ResultCache` memoises results within one
process so that the benchmark modules can each rebuild their figure without
re-running shared simulations.

A cache can additionally be backed by a persistent
:class:`repro.campaign.store.ResultStore` (any object supporting ``get(key)``,
``put(key, result)`` and ``in``), in which case results survive the process: lookups
fall through to the store and fresh results are written through to it.  Both
layers share the :func:`simulation_cell_key` keyspace, so figures can be
rebuilt from a campaign's store without re-simulating anything.
"""

from __future__ import annotations

import hashlib
import os
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro import faults
from repro.sim.config import SystemConfig, canonical_json, config_hash
from repro.sim.engine import RunController, SimulationEngine
from repro.sim.results import SimulationResults
from repro.sim.system import System
from repro.workloads.base import Workload
from repro.workloads.registry import TRACE_PREFIX, get_workload, trace_path


#: Fraction of each core's trace used to warm the caches before measurement.
DEFAULT_WARMUP_FRACTION = 0.5

#: (abspath, mtime_ns, size) -> trace content digest; cell keys are computed
#: repeatedly (spec expansion, executor, store write-back) and re-parsing the
#: trace footer every time would make big campaigns needlessly chatty on disk.
_TRACE_DIGESTS: Dict[Tuple[str, int, int], str] = {}


def _workload_identity(workload_name: str) -> str:
    """The workload's contribution to a cell key.

    Generator workloads are identified by name (their streams are a pure
    function of name/scale/seed/page_size, which the key covers).  A
    ``trace:`` workload is identified by the trace file's *content digest*
    instead of its path: re-capturing different records at the same path
    changes the key (no stale store hits), and moving a trace file keeps
    its stored results reachable.
    """
    path = trace_path(workload_name)
    if path is None:
        return workload_name
    from repro.trace.format import trace_digest

    stat = os.stat(path)
    cache_key = (path, stat.st_mtime_ns, stat.st_size)
    digest = _TRACE_DIGESTS.get(cache_key)
    if digest is None:
        digest = trace_digest(path)
        _TRACE_DIGESTS[cache_key] = digest
    return TRACE_PREFIX + digest


def simulation_cell_key(
    config: SystemConfig,
    workload_name: str,
    records_per_core: int,
    scale: float,
    seed: int,
    warmup_fraction: float,
    page_size: Optional[int] = None,
    timeline_interval: Optional[int] = None,
    timeline_bounds: Optional[Sequence[float]] = None,
) -> str:
    """Content-hashed identity of one simulation cell.

    The key covers everything that determines a simulation's outcome: the
    full configuration (via :func:`repro.sim.config.config_hash`), the
    workload name and its build parameters (``scale``, ``seed``,
    ``page_size``), the trace length and the warmup fraction.  It is stable
    across processes and interpreter runs, which is what makes the campaign
    result store resumable.

    ``timeline_interval`` (and ``timeline_bounds``, the latency histogram
    bucket edges) does not change simulation outcomes, but it does change
    the stored *payload* (a cell run with an observer carries its
    timeline), so it participates in the key — only when set, keeping every
    pre-existing store key valid.
    """
    effective_page_size = page_size if page_size is not None else config.dram_cache.page_size
    fields = {
        "config": config_hash(config),
        "workload": _workload_identity(workload_name),
        "records_per_core": records_per_core,
        "scale": scale,
        "seed": seed,
        "warmup_fraction": warmup_fraction,
        "page_size": effective_page_size,
    }
    if timeline_interval is not None:
        fields["timeline_interval"] = timeline_interval
    if timeline_bounds is not None:
        fields["timeline_bounds"] = [float(bound) for bound in timeline_bounds]
    payload = canonical_json(fields)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def simulation_cell_meta(
    config: SystemConfig,
    workload_name: str,
    records_per_core: int,
    scale: float,
    seed: int,
    warmup_fraction: float,
    page_size: Optional[int] = None,
    label: Optional[str] = None,
    timeline_interval: Optional[int] = None,
    timeline_bounds: Optional[Sequence[float]] = None,
) -> Dict[str, object]:
    """The sweep coordinates stored next to a result (store ``meta`` field).

    Keeps store records self-describing — ``status``/``export`` group and
    label rows from this — whether the result was written by a campaign
    (which supplies its display ``label``) or by a figure function's
    write-through cache (which falls back to the scheme name).
    """
    dram_cache = config.dram_cache
    meta: Dict[str, object] = {}
    if timeline_interval is not None:
        meta["timeline_interval"] = timeline_interval
    if timeline_bounds is not None:
        meta["timeline_bounds"] = [float(bound) for bound in timeline_bounds]
    return {
        **meta,
        "label": label if label is not None else dram_cache.scheme,
        "scheme": dram_cache.scheme,
        "workload": workload_name,
        "seed": seed,
        "records_per_core": records_per_core,
        "scale": scale,
        "warmup_fraction": warmup_fraction,
        "num_cores": config.num_cores,
        "page_size": page_size if page_size is not None else dram_cache.page_size,
        "cache_size": config.in_package_dram.capacity_bytes,
        "replacement_policy": dram_cache.banshee_policy,
        "sampling_coefficient": dram_cache.sampling_coefficient,
        "config_hash": config_hash(config),
    }


class ResultCache:
    """Memoises simulation results keyed by (config, workload, trace length).

    ``store`` is an optional persistent backing layer sharing the same
    keyspace: misses fall through to it and fresh results are written back.
    """

    def __init__(self, store=None) -> None:
        self._results: Dict[str, SimulationResults] = {}
        self._store = store
        self.hits = 0
        self.misses = 0
        self.store_hits = 0

    def key(
        self,
        config: SystemConfig,
        workload_name: str,
        records_per_core: int,
        scale: float,
        seed: int,
        warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
        page_size: Optional[int] = None,
        timeline_interval: Optional[int] = None,
        timeline_bounds: Optional[Sequence[float]] = None,
    ) -> str:
        return simulation_cell_key(
            config, workload_name, records_per_core, scale, seed, warmup_fraction,
            page_size, timeline_interval, timeline_bounds,
        )

    def get(self, key: str) -> Optional[SimulationResults]:
        result = self._results.get(key)
        if result is None and self._store is not None:
            result = self._store.get(key)
            if result is not None:
                self.store_hits += 1
                self._results[key] = result
        if result is not None:
            self.hits += 1
        else:
            self.misses += 1
        return result

    def put(self, key: str, result: SimulationResults, meta: Optional[Dict] = None) -> None:
        self._results[key] = result
        if self._store is not None and key not in self._store:
            self._store.put(key, result, meta=meta)

    def __len__(self) -> int:
        return len(self._results)


#: Process-wide cache shared by the benchmark modules.
GLOBAL_CACHE = ResultCache()


def warmup_checkpoint_key(
    config: SystemConfig,
    workload_name: str,
    scale: float,
    seed: int,
    page_size: int,
    warmup_records: int,
) -> str:
    """Content-hashed identity of a warm engine state (the warmup edge).

    Deliberately narrower than :func:`simulation_cell_key`: the state at the
    warmup boundary depends on the configuration, the workload streams and
    the warmup length — NOT on the total trace length — so one checkpoint
    serves every ``records_per_core`` sharing the same warmup prefix.
    """
    payload = canonical_json({
        "config": config_hash(config),
        "workload": _workload_identity(workload_name),
        "scale": scale,
        "seed": seed,
        "page_size": page_size,
        "warmup_records_per_core": warmup_records,
    })
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class _WarmupCheckpointer(RunController):
    """Run controller that saves an engine snapshot at the warmup edge.

    The engine already cuts batch runs exactly at the warmup threshold (so
    ``begin_measurement`` fires at the same processed count in every mode);
    this controller only asks for an edge at that same count, captures the
    post-``begin_measurement`` state, and writes it atomically.  Results of
    the checkpointing run are bit-identical to an uncontrolled run.
    """

    def __init__(self, warmup_total: int, path: str, workload_meta: Dict[str, object],
                 events=None) -> None:
        self.warmup_total = warmup_total
        self.path = path
        self.workload_meta = workload_meta
        self.events = events
        self.saved = False

    def next_stop(self, processed: int) -> Optional[int]:
        return None if self.saved else self.warmup_total

    def on_edge(self, cursor) -> bool:
        if not self.saved and cursor.processed >= self.warmup_total:
            from repro.obs.snapshot import capture_cursor

            capture_cursor(cursor, workload_meta=self.workload_meta).save(self.path)
            self.saved = True
            if self.events is not None:
                self.events.emit("snapshot_saved", path=self.path,
                                 records=cursor.processed, checkpoint=True)
        return False

    def on_finish(self, cursor) -> None:
        return None


class _AutoSnapshotter(RunController):
    """Run controller that saves a resume snapshot every N processed records.

    Each save atomically overwrites ``path``, so the file always holds the
    *latest* complete snapshot: a worker SIGKILLed mid-cell loses at most
    one interval, and the retry (or a whole re-run of the campaign)
    restores the snapshot and continues bit-identically — snapshots cut
    between two records, exactly where the engine's own run cuts land.
    """

    def __init__(self, every: int, path: str, workload_meta: Dict[str, object],
                 events=None) -> None:
        self.every = every
        self.path = path
        self.workload_meta = workload_meta
        self.events = events
        self.saved = 0

    def next_stop(self, processed: int) -> Optional[int]:
        return processed + (self.every - processed % self.every or self.every)

    def on_edge(self, cursor) -> bool:
        from repro.obs.snapshot import capture_cursor

        capture_cursor(cursor, workload_meta=self.workload_meta).save(self.path)
        self.saved += 1
        if self.events is not None:
            self.events.emit("snapshot_saved", path=self.path,
                             records=cursor.processed, auto=True)
        return False

    def on_finish(self, cursor) -> None:
        return None


class _FaultEdges(RunController):
    """Fires the fault injector's ``records`` site at the planned counts."""

    def __init__(self, injector, cell: Optional[int], triggers: List[int]) -> None:
        self.injector = injector
        self.cell = cell
        self.triggers = triggers  # ascending; consumed from the front

    def next_stop(self, processed: int) -> Optional[int]:
        return self.triggers[0] if self.triggers else None

    def on_edge(self, cursor) -> bool:
        while self.triggers and cursor.processed >= self.triggers[0]:
            self.triggers.pop(0)
        self.injector.fire("records", cell=self.cell, records=cursor.processed)
        return False

    def on_finish(self, cursor) -> None:
        return None


class _ControllerChain(RunController):
    """Multiplexes several controllers onto the engine's single slot.

    The chain's next stop is the minimum of the members' stops, every
    member sees every edge (each keeps its own schedule), and any member
    may stop the run.
    """

    def __init__(self, members: List[RunController]) -> None:
        self.members = members

    def next_stop(self, processed: int) -> Optional[int]:
        stops = [s for s in (m.next_stop(processed) for m in self.members) if s is not None]
        return min(stops) if stops else None

    def on_edge(self, cursor) -> bool:
        stop = False
        for member in self.members:
            stop = bool(member.on_edge(cursor)) or stop
        return stop

    def on_finish(self, cursor) -> None:
        for member in self.members:
            member.on_finish(cursor)


def _chain_controllers(*controllers: Optional[RunController]) -> Optional[RunController]:
    members = [controller for controller in controllers if controller is not None]
    if not members:
        return None
    if len(members) == 1:
        return members[0]
    return _ControllerChain(members)


def run_simulation(
    config: SystemConfig,
    workload_name: Optional[str] = None,
    workload: Optional[Workload] = None,
    records_per_core: int = 20_000,
    scale: float = 1.0,
    seed: int = 1,
    cache: Optional[ResultCache] = None,
    page_size: Optional[int] = None,
    warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
    timeline_interval: Optional[int] = None,
    timeline_bounds: Optional[Sequence[float]] = None,
    events=None,
    checkpoint_dir: Optional[str] = None,
    snapshot_dir: Optional[str] = None,
    snapshot_every: Optional[int] = None,
    controller: Optional[RunController] = None,
    engine_mode: Optional[str] = None,
) -> SimulationResults:
    """Run one simulation (optionally memoised through ``cache``).

    Either ``workload_name`` (resolved through the registry) or a prebuilt
    ``workload`` object must be given.  Prebuilt workloads are never cached,
    because their identity cannot be captured in the cache key.

    ``warmup_fraction`` of each core's records is executed before the
    measurement window opens (statistics cover only the remainder).

    ``timeline_interval`` attaches a
    :class:`~repro.obs.timeline.TimelineObserver` snapshotting windowed
    metric deltas every that many records (the timeline rides along on
    ``result.timeline`` and in the cache); ``timeline_bounds`` overrides its
    latency-histogram bucket edges.  ``events`` is an optional
    :class:`~repro.obs.events.EventLog` for the engine's run events.

    ``checkpoint_dir`` enables warmup checkpointing for named workloads:
    the engine state at the warmup edge is snapshotted to
    ``<dir>/<key>.json`` (keyed by config/workload/warmup only — see
    :func:`warmup_checkpoint_key`), and later runs sharing that warmup
    prefix restore it and simulate only the measured portion.  Results are
    bit-identical either way.  Cells with a timeline attached bypass
    checkpointing: their timeline must cover the warmup windows too.

    ``snapshot_dir`` + ``snapshot_every`` enable **mid-cell auto-snapshots**
    for named workloads: every ``snapshot_every`` processed records the full
    engine state is saved (atomically, latest wins) to
    ``<snapshot_dir>/<cell key>.json``.  If that file already exists when
    the cell starts — a worker was killed mid-cell, or a whole campaign was
    killed and re-run — the engine restores it and continues, producing
    results bit-identical to the uninterrupted run; the file is removed
    once the cell completes.  Timeline cells bypass snapshotting (their
    timeline must cover every window from record zero).

    ``controller`` attaches an additional
    :class:`~repro.sim.batch.RunController` (chained with any internal
    checkpoint/snapshot controllers).  ``engine_mode`` overrides the engine
    mode (default: the ``REPRO_ENGINE_MODE`` environment variable, else the
    engine's default) — results are bit-identical in every mode.
    """
    if (workload_name is None) == (workload is None):
        raise ValueError("provide exactly one of workload_name or workload")
    if not 0.0 <= warmup_fraction < 1.0:
        raise ValueError("warmup_fraction must be in [0, 1)")
    if timeline_bounds is not None and timeline_interval is None:
        raise ValueError("timeline_bounds requires timeline_interval")
    if snapshot_every is not None and snapshot_every <= 0:
        raise ValueError("snapshot_every must be positive (or None to disable)")
    if snapshot_every is not None and snapshot_dir is None:
        raise ValueError("snapshot_every requires snapshot_dir")
    if engine_mode is None:
        engine_mode = os.environ.get("REPRO_ENGINE_MODE") or None
    warmup_records = int(records_per_core * warmup_fraction)

    def observer():
        if timeline_interval is None:
            return None
        from repro.obs.metrics import DEFAULT_LATENCY_BOUNDS
        from repro.obs.timeline import TimelineObserver

        bounds = timeline_bounds if timeline_bounds is not None else DEFAULT_LATENCY_BOUNDS
        return TimelineObserver(timeline_interval, latency_bounds=bounds)

    if workload is not None:
        system = System(config, workload)
        return SimulationEngine(system, mode=engine_mode).run(
            records_per_core, warmup_records_per_core=warmup_records,
            observer=observer(), events=events, controller=controller,
        )

    effective_page_size = page_size if page_size is not None else config.dram_cache.page_size
    key = None
    if cache is not None:
        key = cache.key(
            config,
            workload_name,
            records_per_core,
            scale,
            seed,
            warmup_fraction=warmup_fraction,
            page_size=effective_page_size,
            timeline_interval=timeline_interval,
            timeline_bounds=timeline_bounds,
        )
        cached = cache.get(key)
        if cached is not None:
            return cached

    built = get_workload(
        workload_name, config.num_cores, scale=scale, seed=seed, page_size=effective_page_size
    )
    system = System(config, built)
    engine = SimulationEngine(system, mode=engine_mode)
    workload_meta = {
        "name": workload_name, "num_cores": config.num_cores,
        "scale": scale, "seed": seed, "page_size": effective_page_size,
    }

    # Mid-cell auto-snapshots: restore a leftover snapshot (a crashed
    # attempt's progress) and keep saving fresh ones as this run advances.
    snapshot_path = None
    resumed_mid_cell = False
    snapshotter: Optional[_AutoSnapshotter] = None
    if snapshot_dir is not None and snapshot_every is not None and timeline_interval is None:
        cell_key = simulation_cell_key(
            config, workload_name, records_per_core, scale, seed, warmup_fraction,
            effective_page_size,
        )
        snapshot_path = os.path.join(snapshot_dir, f"{cell_key}.json")
        if os.path.exists(snapshot_path):
            from repro.obs.snapshot import EngineSnapshot

            try:
                engine.restore(EngineSnapshot.load(snapshot_path))
                resumed_mid_cell = True
            except (ValueError, KeyError, OSError):
                # A stale or truncated snapshot is a fresh start, not an
                # error; this run overwrites it at the next interval.
                resumed_mid_cell = False
        if resumed_mid_cell and events is not None:
            events.emit("snapshot_restored", path=snapshot_path,
                        workload=workload_name, seed=seed)
        snapshotter = _AutoSnapshotter(snapshot_every, snapshot_path,
                                       workload_meta, events=events)

    checkpointer = None
    if (checkpoint_dir is not None and warmup_records > 0
            and timeline_interval is None and not resumed_mid_cell):
        ckpt_key = warmup_checkpoint_key(
            config, workload_name, scale, seed, effective_page_size, warmup_records
        )
        ckpt_path = os.path.join(checkpoint_dir, f"{ckpt_key}.json")
        restored = False
        if os.path.exists(ckpt_path):
            from repro.obs.snapshot import EngineSnapshot

            try:
                engine.restore(EngineSnapshot.load(ckpt_path))
                restored = True
            except (ValueError, KeyError, OSError):
                # A stale or truncated checkpoint is a cache miss, not an
                # error: fall through to the full run (which rewrites it).
                restored = False
        if restored:
            if events is not None:
                events.emit("checkpoint_hit", path=ckpt_path,
                            workload=workload_name, seed=seed,
                            warmup_records_per_core=warmup_records)
        else:
            checkpointer = _WarmupCheckpointer(
                warmup_records * config.num_cores, ckpt_path,
                workload_meta=workload_meta,
                events=events,
            )

    # Deterministic fault injection (chaos runs / tests only): fire the
    # planned ``records=`` triggers from controller edges, after any
    # snapshot scheduled at the same edge has been saved.
    fault_edges = None
    injector = faults.active_injector()
    if injector is not None:
        triggers = injector.record_triggers(faults.current_cell())
        if triggers:
            fault_edges = _FaultEdges(injector, faults.current_cell(), triggers)

    result = engine.run(
        records_per_core, warmup_records_per_core=warmup_records,
        observer=observer(), events=events,
        controller=_chain_controllers(controller, checkpointer, snapshotter, fault_edges),
    )
    if snapshot_path is not None:
        # The cell completed; its resume point is spent.  Leaving it would
        # make the *next* identical run resume at the end and skip the cell.
        try:
            os.remove(snapshot_path)
        except OSError:
            pass
    if cache is not None and key is not None:
        meta = simulation_cell_meta(
            config, workload_name, records_per_core, scale, seed, warmup_fraction,
            effective_page_size, timeline_interval=timeline_interval,
            timeline_bounds=timeline_bounds,
        )
        cache.put(key, result, meta=meta)
    return result


def resolve_cache(cache: Optional[ResultCache], store=None) -> ResultCache:
    """Pick the cache for a harness entry point.

    An explicit ``cache`` wins.  Otherwise, a persistent ``store`` gets a
    fresh read/write-through cache so results are served from and saved to
    disk; with neither, the process-wide :data:`GLOBAL_CACHE` is used.
    """
    if cache is not None:
        return cache
    if store is not None:
        return ResultCache(store=store)
    return GLOBAL_CACHE


def run_matrix(
    schemes: Iterable[Tuple[str, SystemConfig]],
    workload_names: Iterable[str],
    records_per_core: int,
    scale: float = 1.0,
    seed: int = 1,
    cache: Optional[ResultCache] = None,
    store=None,
) -> Dict[Tuple[str, str], SimulationResults]:
    """Run a full (scheme x workload) matrix.

    ``schemes`` is an iterable of (label, config) pairs; the label is used as
    the result key so the same scheme can appear twice with different
    parameters (Alloy 1 vs Alloy 0.1).  Passing a persistent ``store``
    (see :class:`repro.campaign.store.ResultStore`) serves already-simulated
    cells from disk and persists new ones.
    """
    cache = resolve_cache(cache, store)
    results: Dict[Tuple[str, str], SimulationResults] = {}
    for workload_name in workload_names:
        for label, config in schemes:
            results[(workload_name, label)] = run_simulation(
                config,
                workload_name=workload_name,
                records_per_core=records_per_core,
                scale=scale,
                seed=seed,
                cache=cache,
            )
    return results


def baseline_results(
    workload_names: Iterable[str],
    records_per_core: int,
    config_factory,
    scale: float = 1.0,
    seed: int = 1,
    cache: Optional[ResultCache] = None,
    store=None,
) -> Dict[str, SimulationResults]:
    """NoCache results per workload (the normalisation baseline of Figure 4)."""
    cache = resolve_cache(cache, store)
    baseline: Dict[str, SimulationResults] = {}
    for workload_name in workload_names:
        config = config_factory("nocache")
        baseline[workload_name] = run_simulation(
            config,
            workload_name=workload_name,
            records_per_core=records_per_core,
            scale=scale,
            seed=seed,
            cache=cache,
        )
    return baseline
