"""Simulation runner with result caching.

Several figures of the paper share the same underlying simulations (the
speedup, in-package-traffic and off-package-traffic figures all come from one
workload x scheme matrix).  :class:`ResultCache` memoises results within one
process so that the benchmark modules can each rebuild their figure without
re-running shared simulations.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Tuple

from repro.sim.config import SystemConfig
from repro.sim.engine import SimulationEngine
from repro.sim.results import SimulationResults
from repro.sim.system import System
from repro.workloads.base import Workload
from repro.workloads.registry import get_workload


def _config_key(config: SystemConfig) -> str:
    return json.dumps(config.to_dict(), sort_keys=True, default=str)


class ResultCache:
    """Memoises simulation results keyed by (config, workload, trace length)."""

    def __init__(self) -> None:
        self._results: Dict[str, SimulationResults] = {}
        self.hits = 0
        self.misses = 0

    def key(self, config: SystemConfig, workload_name: str, records_per_core: int, scale: float, seed: int) -> str:
        return "|".join(
            [_config_key(config), workload_name, str(records_per_core), str(scale), str(seed)]
        )

    def get(self, key: str) -> Optional[SimulationResults]:
        result = self._results.get(key)
        if result is not None:
            self.hits += 1
        return result

    def put(self, key: str, result: SimulationResults) -> None:
        self.misses += 1
        self._results[key] = result

    def __len__(self) -> int:
        return len(self._results)


#: Process-wide cache shared by the benchmark modules.
GLOBAL_CACHE = ResultCache()


#: Fraction of each core's trace used to warm the caches before measurement.
DEFAULT_WARMUP_FRACTION = 0.5


def run_simulation(
    config: SystemConfig,
    workload_name: Optional[str] = None,
    workload: Optional[Workload] = None,
    records_per_core: int = 20_000,
    scale: float = 1.0,
    seed: int = 1,
    cache: Optional[ResultCache] = None,
    page_size: Optional[int] = None,
    warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
) -> SimulationResults:
    """Run one simulation (optionally memoised through ``cache``).

    Either ``workload_name`` (resolved through the registry) or a prebuilt
    ``workload`` object must be given.  Prebuilt workloads are never cached,
    because their identity cannot be captured in the cache key.

    ``warmup_fraction`` of each core's records is executed before the
    measurement window opens (statistics cover only the remainder).
    """
    if (workload_name is None) == (workload is None):
        raise ValueError("provide exactly one of workload_name or workload")
    if not 0.0 <= warmup_fraction < 1.0:
        raise ValueError("warmup_fraction must be in [0, 1)")
    warmup_records = int(records_per_core * warmup_fraction)

    if workload is not None:
        system = System(config, workload)
        return SimulationEngine(system).run(records_per_core, warmup_records_per_core=warmup_records)

    effective_page_size = page_size if page_size is not None else config.dram_cache.page_size
    key = None
    if cache is not None:
        key = cache.key(
            config,
            f"{workload_name}@{effective_page_size}@{warmup_fraction}",
            records_per_core,
            scale,
            seed,
        )
        cached = cache.get(key)
        if cached is not None:
            return cached

    built = get_workload(
        workload_name, config.num_cores, scale=scale, seed=seed, page_size=effective_page_size
    )
    system = System(config, built)
    result = SimulationEngine(system).run(records_per_core, warmup_records_per_core=warmup_records)
    if cache is not None and key is not None:
        cache.put(key, result)
    return result


def run_matrix(
    schemes: Iterable[Tuple[str, SystemConfig]],
    workload_names: Iterable[str],
    records_per_core: int,
    scale: float = 1.0,
    seed: int = 1,
    cache: Optional[ResultCache] = None,
) -> Dict[Tuple[str, str], SimulationResults]:
    """Run a full (scheme x workload) matrix.

    ``schemes`` is an iterable of (label, config) pairs; the label is used as
    the result key so the same scheme can appear twice with different
    parameters (Alloy 1 vs Alloy 0.1).
    """
    cache = cache if cache is not None else GLOBAL_CACHE
    results: Dict[Tuple[str, str], SimulationResults] = {}
    for workload_name in workload_names:
        for label, config in schemes:
            results[(workload_name, label)] = run_simulation(
                config,
                workload_name=workload_name,
                records_per_core=records_per_core,
                scale=scale,
                seed=seed,
                cache=cache,
            )
    return results


def baseline_results(
    workload_names: Iterable[str],
    records_per_core: int,
    config_factory,
    scale: float = 1.0,
    seed: int = 1,
    cache: Optional[ResultCache] = None,
) -> Dict[str, SimulationResults]:
    """NoCache results per workload (the normalisation baseline of Figure 4)."""
    cache = cache if cache is not None else GLOBAL_CACHE
    baseline: Dict[str, SimulationResults] = {}
    for workload_name in workload_names:
        config = config_factory("nocache")
        baseline[workload_name] = run_simulation(
            config,
            workload_name=workload_name,
            records_per_core=records_per_core,
            scale=scale,
            seed=seed,
            cache=cache,
        )
    return baseline
