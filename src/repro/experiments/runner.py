"""Simulation runner with result caching.

Several figures of the paper share the same underlying simulations (the
speedup, in-package-traffic and off-package-traffic figures all come from one
workload x scheme matrix).  :class:`ResultCache` memoises results within one
process so that the benchmark modules can each rebuild their figure without
re-running shared simulations.

A cache can additionally be backed by a persistent
:class:`repro.campaign.store.ResultStore` (any object supporting ``get(key)``,
``put(key, result)`` and ``in``), in which case results survive the process: lookups
fall through to the store and fresh results are written through to it.  Both
layers share the :func:`simulation_cell_key` keyspace, so figures can be
rebuilt from a campaign's store without re-simulating anything.
"""

from __future__ import annotations

import hashlib
import os
from typing import Dict, Iterable, List, Optional, Tuple

from repro.sim.config import SystemConfig, canonical_json, config_hash
from repro.sim.engine import SimulationEngine
from repro.sim.results import SimulationResults
from repro.sim.system import System
from repro.workloads.base import Workload
from repro.workloads.registry import TRACE_PREFIX, get_workload, trace_path


#: Fraction of each core's trace used to warm the caches before measurement.
DEFAULT_WARMUP_FRACTION = 0.5

#: (abspath, mtime_ns, size) -> trace content digest; cell keys are computed
#: repeatedly (spec expansion, executor, store write-back) and re-parsing the
#: trace footer every time would make big campaigns needlessly chatty on disk.
_TRACE_DIGESTS: Dict[Tuple[str, int, int], str] = {}


def _workload_identity(workload_name: str) -> str:
    """The workload's contribution to a cell key.

    Generator workloads are identified by name (their streams are a pure
    function of name/scale/seed/page_size, which the key covers).  A
    ``trace:`` workload is identified by the trace file's *content digest*
    instead of its path: re-capturing different records at the same path
    changes the key (no stale store hits), and moving a trace file keeps
    its stored results reachable.
    """
    path = trace_path(workload_name)
    if path is None:
        return workload_name
    from repro.trace.format import trace_digest

    stat = os.stat(path)
    cache_key = (path, stat.st_mtime_ns, stat.st_size)
    digest = _TRACE_DIGESTS.get(cache_key)
    if digest is None:
        digest = trace_digest(path)
        _TRACE_DIGESTS[cache_key] = digest
    return TRACE_PREFIX + digest


def simulation_cell_key(
    config: SystemConfig,
    workload_name: str,
    records_per_core: int,
    scale: float,
    seed: int,
    warmup_fraction: float,
    page_size: Optional[int] = None,
    timeline_interval: Optional[int] = None,
) -> str:
    """Content-hashed identity of one simulation cell.

    The key covers everything that determines a simulation's outcome: the
    full configuration (via :func:`repro.sim.config.config_hash`), the
    workload name and its build parameters (``scale``, ``seed``,
    ``page_size``), the trace length and the warmup fraction.  It is stable
    across processes and interpreter runs, which is what makes the campaign
    result store resumable.

    ``timeline_interval`` does not change simulation outcomes, but it does
    change the stored *payload* (a cell run with an observer carries its
    timeline), so it participates in the key — only when set, keeping every
    pre-existing store key valid.
    """
    effective_page_size = page_size if page_size is not None else config.dram_cache.page_size
    fields = {
        "config": config_hash(config),
        "workload": _workload_identity(workload_name),
        "records_per_core": records_per_core,
        "scale": scale,
        "seed": seed,
        "warmup_fraction": warmup_fraction,
        "page_size": effective_page_size,
    }
    if timeline_interval is not None:
        fields["timeline_interval"] = timeline_interval
    payload = canonical_json(fields)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def simulation_cell_meta(
    config: SystemConfig,
    workload_name: str,
    records_per_core: int,
    scale: float,
    seed: int,
    warmup_fraction: float,
    page_size: Optional[int] = None,
    label: Optional[str] = None,
    timeline_interval: Optional[int] = None,
) -> Dict[str, object]:
    """The sweep coordinates stored next to a result (store ``meta`` field).

    Keeps store records self-describing — ``status``/``export`` group and
    label rows from this — whether the result was written by a campaign
    (which supplies its display ``label``) or by a figure function's
    write-through cache (which falls back to the scheme name).
    """
    dram_cache = config.dram_cache
    meta = {} if timeline_interval is None else {"timeline_interval": timeline_interval}
    return {
        **meta,
        "label": label if label is not None else dram_cache.scheme,
        "scheme": dram_cache.scheme,
        "workload": workload_name,
        "seed": seed,
        "records_per_core": records_per_core,
        "scale": scale,
        "warmup_fraction": warmup_fraction,
        "num_cores": config.num_cores,
        "page_size": page_size if page_size is not None else dram_cache.page_size,
        "cache_size": config.in_package_dram.capacity_bytes,
        "replacement_policy": dram_cache.banshee_policy,
        "sampling_coefficient": dram_cache.sampling_coefficient,
        "config_hash": config_hash(config),
    }


class ResultCache:
    """Memoises simulation results keyed by (config, workload, trace length).

    ``store`` is an optional persistent backing layer sharing the same
    keyspace: misses fall through to it and fresh results are written back.
    """

    def __init__(self, store=None) -> None:
        self._results: Dict[str, SimulationResults] = {}
        self._store = store
        self.hits = 0
        self.misses = 0
        self.store_hits = 0

    def key(
        self,
        config: SystemConfig,
        workload_name: str,
        records_per_core: int,
        scale: float,
        seed: int,
        warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
        page_size: Optional[int] = None,
        timeline_interval: Optional[int] = None,
    ) -> str:
        return simulation_cell_key(
            config, workload_name, records_per_core, scale, seed, warmup_fraction,
            page_size, timeline_interval,
        )

    def get(self, key: str) -> Optional[SimulationResults]:
        result = self._results.get(key)
        if result is None and self._store is not None:
            result = self._store.get(key)
            if result is not None:
                self.store_hits += 1
                self._results[key] = result
        if result is not None:
            self.hits += 1
        else:
            self.misses += 1
        return result

    def put(self, key: str, result: SimulationResults, meta: Optional[Dict] = None) -> None:
        self._results[key] = result
        if self._store is not None and key not in self._store:
            self._store.put(key, result, meta=meta)

    def __len__(self) -> int:
        return len(self._results)


#: Process-wide cache shared by the benchmark modules.
GLOBAL_CACHE = ResultCache()


def run_simulation(
    config: SystemConfig,
    workload_name: Optional[str] = None,
    workload: Optional[Workload] = None,
    records_per_core: int = 20_000,
    scale: float = 1.0,
    seed: int = 1,
    cache: Optional[ResultCache] = None,
    page_size: Optional[int] = None,
    warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
    timeline_interval: Optional[int] = None,
    events=None,
) -> SimulationResults:
    """Run one simulation (optionally memoised through ``cache``).

    Either ``workload_name`` (resolved through the registry) or a prebuilt
    ``workload`` object must be given.  Prebuilt workloads are never cached,
    because their identity cannot be captured in the cache key.

    ``warmup_fraction`` of each core's records is executed before the
    measurement window opens (statistics cover only the remainder).

    ``timeline_interval`` attaches a
    :class:`~repro.obs.timeline.TimelineObserver` snapshotting windowed
    metric deltas every that many records (the timeline rides along on
    ``result.timeline`` and in the cache).  ``events`` is an optional
    :class:`~repro.obs.events.EventLog` for the engine's run events.
    """
    if (workload_name is None) == (workload is None):
        raise ValueError("provide exactly one of workload_name or workload")
    if not 0.0 <= warmup_fraction < 1.0:
        raise ValueError("warmup_fraction must be in [0, 1)")
    warmup_records = int(records_per_core * warmup_fraction)

    def observer():
        if timeline_interval is None:
            return None
        from repro.obs.timeline import TimelineObserver

        return TimelineObserver(timeline_interval)

    if workload is not None:
        system = System(config, workload)
        return SimulationEngine(system).run(
            records_per_core, warmup_records_per_core=warmup_records,
            observer=observer(), events=events,
        )

    effective_page_size = page_size if page_size is not None else config.dram_cache.page_size
    key = None
    if cache is not None:
        key = cache.key(
            config,
            workload_name,
            records_per_core,
            scale,
            seed,
            warmup_fraction=warmup_fraction,
            page_size=effective_page_size,
            timeline_interval=timeline_interval,
        )
        cached = cache.get(key)
        if cached is not None:
            return cached

    built = get_workload(
        workload_name, config.num_cores, scale=scale, seed=seed, page_size=effective_page_size
    )
    system = System(config, built)
    result = SimulationEngine(system).run(
        records_per_core, warmup_records_per_core=warmup_records,
        observer=observer(), events=events,
    )
    if cache is not None and key is not None:
        meta = simulation_cell_meta(
            config, workload_name, records_per_core, scale, seed, warmup_fraction,
            effective_page_size, timeline_interval=timeline_interval,
        )
        cache.put(key, result, meta=meta)
    return result


def resolve_cache(cache: Optional[ResultCache], store=None) -> ResultCache:
    """Pick the cache for a harness entry point.

    An explicit ``cache`` wins.  Otherwise, a persistent ``store`` gets a
    fresh read/write-through cache so results are served from and saved to
    disk; with neither, the process-wide :data:`GLOBAL_CACHE` is used.
    """
    if cache is not None:
        return cache
    if store is not None:
        return ResultCache(store=store)
    return GLOBAL_CACHE


def run_matrix(
    schemes: Iterable[Tuple[str, SystemConfig]],
    workload_names: Iterable[str],
    records_per_core: int,
    scale: float = 1.0,
    seed: int = 1,
    cache: Optional[ResultCache] = None,
    store=None,
) -> Dict[Tuple[str, str], SimulationResults]:
    """Run a full (scheme x workload) matrix.

    ``schemes`` is an iterable of (label, config) pairs; the label is used as
    the result key so the same scheme can appear twice with different
    parameters (Alloy 1 vs Alloy 0.1).  Passing a persistent ``store``
    (see :class:`repro.campaign.store.ResultStore`) serves already-simulated
    cells from disk and persists new ones.
    """
    cache = resolve_cache(cache, store)
    results: Dict[Tuple[str, str], SimulationResults] = {}
    for workload_name in workload_names:
        for label, config in schemes:
            results[(workload_name, label)] = run_simulation(
                config,
                workload_name=workload_name,
                records_per_core=records_per_core,
                scale=scale,
                seed=seed,
                cache=cache,
            )
    return results


def baseline_results(
    workload_names: Iterable[str],
    records_per_core: int,
    config_factory,
    scale: float = 1.0,
    seed: int = 1,
    cache: Optional[ResultCache] = None,
    store=None,
) -> Dict[str, SimulationResults]:
    """NoCache results per workload (the normalisation baseline of Figure 4)."""
    cache = resolve_cache(cache, store)
    baseline: Dict[str, SimulationResults] = {}
    for workload_name in workload_names:
        config = config_factory("nocache")
        baseline[workload_name] = run_simulation(
            config,
            workload_name=workload_name,
            records_per_core=records_per_core,
            scale=scale,
            seed=seed,
            cache=cache,
        )
    return baseline
