"""Experiment harness: run matrices of simulations and rebuild the paper's figures."""

from repro.experiments.defaults import (
    BENCH_RECORDS_PER_CORE,
    FIGURE4_SCHEMES,
    SWEEP_WORKLOADS,
    bench_config,
    bench_records_per_core,
)
from repro.experiments.figures import (
    figure4_speedup,
    figure5_in_package_traffic,
    figure6_off_package_traffic,
    figure7_replacement_policies,
    figure8_latency_bandwidth,
    figure9_sampling,
    table1_behavior,
    table5_pte_update_cost,
    table6_associativity,
)
from repro.experiments.report import format_table
from repro.experiments.runner import ResultCache, run_matrix, run_simulation

__all__ = [
    "BENCH_RECORDS_PER_CORE",
    "FIGURE4_SCHEMES",
    "SWEEP_WORKLOADS",
    "bench_config",
    "bench_records_per_core",
    "figure4_speedup",
    "figure5_in_package_traffic",
    "figure6_off_package_traffic",
    "figure7_replacement_policies",
    "figure8_latency_bandwidth",
    "figure9_sampling",
    "table1_behavior",
    "table5_pte_update_cost",
    "table6_associativity",
    "format_table",
    "ResultCache",
    "run_matrix",
    "run_simulation",
]
