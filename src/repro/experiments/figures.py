"""Reproduction functions for every table and figure of the paper's evaluation.

Each ``figureN_*`` / ``tableN_*`` function runs the simulations that figure
needs (through the shared :data:`repro.experiments.runner.GLOBAL_CACHE`, so
figures that share a matrix do not re-simulate) and returns a dictionary
with:

* ``rows`` — a list of dict rows, one per data point of the figure,
* ``summary`` — the headline aggregate the paper quotes in the text,
* ``headers`` — a suggested column order for pretty-printing.

The benchmark modules under ``benchmarks/`` wrap these functions, time them
with pytest-benchmark, and print the resulting tables; EXPERIMENTS.md records
a snapshot of their output next to the paper's numbers.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.experiments.defaults import (
    BENCH_NUM_CORES,
    FIGURE4_SCHEMES,
    SWEEP_WORKLOADS,
    bench_config,
    bench_records_per_core,
    scale_in_package,
)
from repro.experiments.runner import ResultCache, resolve_cache, run_simulation
from repro.sim.config import MB, SystemConfig
from repro.sim.results import SimulationResults, geometric_mean
from repro.workloads.registry import EVALUATION_WORKLOADS, GRAPH_WORKLOADS


def _defaults(
    workloads: Optional[Sequence[str]],
    records_per_core: Optional[int],
    num_cores: Optional[int],
    cache: Optional[ResultCache],
    default_workloads: Sequence[str],
    records_fraction: float = 1.0,
    store=None,
) -> Tuple[Sequence[str], int, int, ResultCache]:
    """Resolve the shared figure-function arguments.

    ``store`` is an optional persistent :class:`repro.campaign.store.ResultStore`;
    when given (and no explicit ``cache``), simulations are read from and
    written through it, so a figure whose matrix a campaign already ran is
    rebuilt without re-simulating (see :func:`repro.experiments.runner.resolve_cache`).
    """
    resolved_workloads = list(workloads) if workloads is not None else list(default_workloads)
    resolved_records = records_per_core if records_per_core is not None else bench_records_per_core(records_fraction)
    resolved_cores = num_cores if num_cores is not None else BENCH_NUM_CORES
    resolved_cache = resolve_cache(cache, store)
    return resolved_workloads, resolved_records, resolved_cores, resolved_cache


def _run(
    scheme: str,
    workload: str,
    records: int,
    cores: int,
    cache: ResultCache,
    config: Optional[SystemConfig] = None,
    **overrides,
) -> SimulationResults:
    cfg = config if config is not None else bench_config(scheme, num_cores=cores, **overrides)
    return run_simulation(cfg, workload_name=workload, records_per_core=records, cache=cache)


# --------------------------------------------------------------------------- Figure 4


def figure4_speedup(
    workloads: Optional[Sequence[str]] = None,
    records_per_core: Optional[int] = None,
    num_cores: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    schemes: Sequence[Tuple[str, str, Dict]] = tuple(FIGURE4_SCHEMES),
    store=None,
) -> Dict:
    """Figure 4: speedup normalised to NoCache, plus MPKI, per workload."""
    workloads, records, cores, cache = _defaults(workloads, records_per_core, num_cores, cache, EVALUATION_WORKLOADS, store=store)
    rows: List[Dict] = []
    speedups: Dict[str, List[float]] = {label: [] for label, _scheme, _ov in schemes}
    for workload in workloads:
        baseline = _run("nocache", workload, records, cores, cache)
        for label, scheme, overrides in schemes:
            result = _run(scheme, workload, records, cores, cache, **overrides)
            speedup = result.speedup_over(baseline)
            speedups[label].append(speedup)
            rows.append(
                {
                    "workload": workload,
                    "scheme": label,
                    "speedup": round(speedup, 3),
                    "mpki": round(result.mpki, 2),
                    "ipc": round(result.ipc, 3),
                }
            )
    summary = {label: round(geometric_mean(values), 3) for label, values in speedups.items()}
    banshee = summary.get("Banshee", 0.0)
    comparisons = {
        f"banshee_vs_{label.replace(' ', '_').lower()}": round(banshee / value - 1.0, 4)
        for label, value in summary.items()
        if label != "Banshee" and value > 0
    }
    return {
        "headers": ["workload", "scheme", "speedup", "mpki", "ipc"],
        "rows": rows,
        "summary": {"geomean_speedup": summary, "banshee_gain": comparisons},
    }


# --------------------------------------------------------------------------- Figures 5 and 6


def figure5_in_package_traffic(
    workloads: Optional[Sequence[str]] = None,
    records_per_core: Optional[int] = None,
    num_cores: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    schemes: Sequence[Tuple[str, str, Dict]] = tuple(FIGURE4_SCHEMES),
    store=None,
) -> Dict:
    """Figure 5: in-package DRAM traffic breakdown, bytes per instruction."""
    workloads, records, cores, cache = _defaults(workloads, records_per_core, num_cores, cache, EVALUATION_WORKLOADS, store=store)
    cache_schemes = [entry for entry in schemes if entry[1] not in ("cacheonly",)]
    rows: List[Dict] = []
    totals: Dict[str, List[float]] = {label: [] for label, _s, _o in cache_schemes}
    for workload in workloads:
        for label, scheme, overrides in cache_schemes:
            result = _run(scheme, workload, records, cores, cache, **overrides)
            breakdown = result.in_bytes_per_instruction
            total = sum(breakdown.values())
            totals[label].append(total)
            rows.append(
                {
                    "workload": workload,
                    "scheme": label,
                    "HitData": round(breakdown.get("HitData", 0.0), 3),
                    "MissData": round(breakdown.get("MissData", 0.0), 3),
                    "Tag": round(breakdown.get("Tag", 0.0) + breakdown.get("Counter", 0.0), 3),
                    "Replacement": round(breakdown.get("Replacement", 0.0), 3),
                    "Writeback": round(breakdown.get("Writeback", 0.0), 3),
                    "total": round(total, 3),
                }
            )
    averages = {label: round(sum(values) / len(values), 3) for label, values in totals.items() if values}
    banshee_avg = averages.get("Banshee", 0.0)
    best_other = min((value for label, value in averages.items() if label != "Banshee"), default=0.0)
    reduction = round(1.0 - banshee_avg / best_other, 4) if best_other > 0 else 0.0
    return {
        "headers": ["workload", "scheme", "HitData", "MissData", "Tag", "Replacement", "Writeback", "total"],
        "rows": rows,
        "summary": {"average_total_bpi": averages, "banshee_traffic_reduction_vs_best": reduction},
    }


def figure6_off_package_traffic(
    workloads: Optional[Sequence[str]] = None,
    records_per_core: Optional[int] = None,
    num_cores: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    schemes: Sequence[Tuple[str, str, Dict]] = tuple(FIGURE4_SCHEMES),
    store=None,
) -> Dict:
    """Figure 6: off-package DRAM traffic, bytes per instruction."""
    workloads, records, cores, cache = _defaults(workloads, records_per_core, num_cores, cache, EVALUATION_WORKLOADS, store=store)
    cache_schemes = [entry for entry in schemes if entry[1] not in ("cacheonly",)]
    rows: List[Dict] = []
    totals: Dict[str, List[float]] = {label: [] for label, _s, _o in cache_schemes}
    for workload in workloads:
        for label, scheme, overrides in cache_schemes:
            result = _run(scheme, workload, records, cores, cache, **overrides)
            total = result.total_off_bytes_per_instruction
            totals[label].append(total)
            rows.append({"workload": workload, "scheme": label, "off_bpi": round(total, 3)})
    averages = {label: round(sum(values) / len(values), 3) for label, values in totals.items() if values}
    return {
        "headers": ["workload", "scheme", "off_bpi"],
        "rows": rows,
        "summary": {"average_off_bpi": averages},
    }


# --------------------------------------------------------------------------- Figure 7


def figure7_replacement_policies(
    workloads: Optional[Sequence[str]] = None,
    records_per_core: Optional[int] = None,
    num_cores: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    store=None,
) -> Dict:
    """Figure 7: Banshee replacement-policy ablation vs TDC."""
    workloads, records, cores, cache = _defaults(
        workloads, records_per_core, num_cores, cache, SWEEP_WORKLOADS, records_fraction=0.7, store=store
    )
    policies = [
        ("Banshee LRU", "banshee", {"banshee_policy": "lru"}),
        ("Banshee FBR no sample", "banshee", {"banshee_policy": "fbr-nosample"}),
        ("Banshee", "banshee", {}),
        ("TDC", "tdc", {}),
    ]
    speedups: Dict[str, List[float]] = {label: [] for label, _s, _o in policies}
    traffic: Dict[str, List[float]] = {label: [] for label, _s, _o in policies}
    for workload in workloads:
        baseline = _run("nocache", workload, records, cores, cache)
        for label, scheme, overrides in policies:
            result = _run(scheme, workload, records, cores, cache, **overrides)
            speedups[label].append(result.speedup_over(baseline))
            traffic[label].append(result.total_in_bytes_per_instruction)
    rows = [
        {
            "policy": label,
            "norm_speedup": round(geometric_mean(speedups[label]), 3),
            "in_package_bpi": round(sum(traffic[label]) / len(traffic[label]), 3),
        }
        for label, _s, _o in policies
    ]
    return {
        "headers": ["policy", "norm_speedup", "in_package_bpi"],
        "rows": rows,
        "summary": {row["policy"]: row["norm_speedup"] for row in rows},
    }


# --------------------------------------------------------------------------- Table 5


def table5_pte_update_cost(
    workloads: Optional[Sequence[str]] = None,
    records_per_core: Optional[int] = None,
    num_cores: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    costs_us: Sequence[float] = (10.0, 20.0, 40.0),
    store=None,
) -> Dict:
    """Table 5: performance loss vs free PTE updates for several update costs."""
    workloads, records, cores, cache = _defaults(
        workloads, records_per_core, num_cores, cache, SWEEP_WORKLOADS, records_fraction=0.7, store=store
    )
    free_results = {
        workload: _run("banshee", workload, records, cores, cache, tag_buffer_flush_cost_us=0.0,
                       tlb_shootdown_initiator_us=0.0, tlb_shootdown_slave_us=0.0)
        for workload in workloads
    }
    rows: List[Dict] = []
    for cost in costs_us:
        losses = []
        for workload in workloads:
            result = _run("banshee", workload, records, cores, cache, tag_buffer_flush_cost_us=cost)
            free = free_results[workload]
            loss = max(0.0, result.cycles / free.cycles - 1.0)
            losses.append(loss)
        rows.append(
            {
                "update_cost_us": cost,
                "avg_perf_loss_pct": round(100.0 * sum(losses) / len(losses), 3),
                "max_perf_loss_pct": round(100.0 * max(losses), 3),
            }
        )
    return {
        "headers": ["update_cost_us", "avg_perf_loss_pct", "max_perf_loss_pct"],
        "rows": rows,
        "summary": {row["update_cost_us"]: row["avg_perf_loss_pct"] for row in rows},
    }


# --------------------------------------------------------------------------- Figure 8


def figure8_latency_bandwidth(
    workloads: Optional[Sequence[str]] = None,
    records_per_core: Optional[int] = None,
    num_cores: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    store=None,
) -> Dict:
    """Figure 8: sweep in-package DRAM latency and bandwidth."""
    workloads, records, cores, cache = _defaults(
        workloads, records_per_core, num_cores, cache, SWEEP_WORKLOADS, records_fraction=0.5, store=store
    )
    schemes = [("Banshee", "banshee", {}), ("Alloy", "alloy", {}), ("TDC", "tdc", {}), ("Unison", "unison", {})]
    latency_points = [("100%", 1.0), ("66%", 0.66), ("50%", 0.5)]
    bandwidth_points = [("8X", 2.0), ("4X", 1.0), ("2X", 0.5)]
    rows: List[Dict] = []

    def run_point(sweep: str, point_label: str, latency_scale: float, bandwidth_scale: float) -> None:
        for label, scheme, overrides in schemes:
            config = scale_in_package(
                bench_config(scheme, num_cores=cores, **overrides),
                latency_scale=latency_scale,
                bandwidth_scale=bandwidth_scale,
            )
            speedups = []
            for workload in workloads:
                baseline = _run("nocache", workload, records, cores, cache)
                result = run_simulation(config, workload_name=workload, records_per_core=records, cache=cache)
                speedups.append(result.speedup_over(baseline))
            rows.append(
                {
                    "sweep": sweep,
                    "point": point_label,
                    "scheme": label,
                    "norm_speedup": round(geometric_mean(speedups), 3),
                }
            )

    for point_label, latency_scale in latency_points:
        run_point("latency", point_label, latency_scale, 1.0)
    for point_label, bandwidth_scale in bandwidth_points:
        run_point("bandwidth", point_label, 1.0, bandwidth_scale)

    return {
        "headers": ["sweep", "point", "scheme", "norm_speedup"],
        "rows": rows,
        "summary": {},
    }


# --------------------------------------------------------------------------- Figure 9


def figure9_sampling(
    workloads: Optional[Sequence[str]] = None,
    records_per_core: Optional[int] = None,
    num_cores: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    coefficients: Sequence[float] = (1.0, 0.1, 0.01),
    store=None,
) -> Dict:
    """Figure 9: miss rate and DRAM-cache traffic vs sampling coefficient."""
    workloads, records, cores, cache = _defaults(
        workloads, records_per_core, num_cores, cache, SWEEP_WORKLOADS, records_fraction=0.7, store=store
    )
    rows: List[Dict] = []
    for coefficient in coefficients:
        miss_rates = []
        breakdowns: Dict[str, float] = {}
        for workload in workloads:
            result = _run("banshee", workload, records, cores, cache, sampling_coefficient=coefficient)
            miss_rates.append(result.dram_cache_miss_rate)
            for key, value in result.in_bytes_per_instruction.items():
                breakdowns[key] = breakdowns.get(key, 0.0) + value / len(workloads)
        rows.append(
            {
                "sampling_coefficient": coefficient,
                "miss_rate": round(sum(miss_rates) / len(miss_rates), 4),
                "HitData": round(breakdowns.get("HitData", 0.0), 3),
                "MissData": round(breakdowns.get("MissData", 0.0), 3),
                "Tag": round(breakdowns.get("Tag", 0.0), 3),
                "Counter": round(breakdowns.get("Counter", 0.0), 3),
                "Replacement": round(breakdowns.get("Replacement", 0.0), 3),
            }
        )
    return {
        "headers": ["sampling_coefficient", "miss_rate", "HitData", "MissData", "Tag", "Counter", "Replacement"],
        "rows": rows,
        "summary": {row["sampling_coefficient"]: row["miss_rate"] for row in rows},
    }


# --------------------------------------------------------------------------- Table 6


def table6_associativity(
    workloads: Optional[Sequence[str]] = None,
    records_per_core: Optional[int] = None,
    num_cores: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    ways: Sequence[int] = (1, 2, 4, 8),
    store=None,
) -> Dict:
    """Table 6: DRAM-cache miss rate vs associativity for Banshee."""
    workloads, records, cores, cache = _defaults(
        workloads, records_per_core, num_cores, cache, SWEEP_WORKLOADS, records_fraction=0.7, store=store
    )
    rows: List[Dict] = []
    for num_ways in ways:
        miss_rates = []
        for workload in workloads:
            result = _run("banshee", workload, records, cores, cache, ways=num_ways)
            miss_rates.append(result.dram_cache_miss_rate)
        rows.append({"ways": num_ways, "miss_rate": round(sum(miss_rates) / len(miss_rates), 4)})
    return {
        "headers": ["ways", "miss_rate"],
        "rows": rows,
        "summary": {row["ways"]: row["miss_rate"] for row in rows},
    }


# --------------------------------------------------------------------------- Table 1 (behaviour)


def table1_behavior(
    workload: str = "pagerank",
    records_per_core: Optional[int] = None,
    num_cores: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    store=None,
) -> Dict:
    """Table 1: qualitative per-scheme behaviour, measured on one workload.

    Reports the measured in-package bytes moved per DRAM-cache hit, the tag
    and replacement traffic shares, and whether replacement happens on every
    miss — the quantities Table 1 of the paper describes symbolically.
    """
    _w, records, cores, cache = _defaults(None, records_per_core, num_cores, cache, [workload], records_fraction=0.5, store=store)
    schemes = [
        ("Unison", "unison", {}),
        ("Alloy", "alloy", {}),
        ("TDC", "tdc", {}),
        ("HMA", "hma", {}),
        ("Banshee", "banshee", {}),
    ]
    rows: List[Dict] = []
    for label, scheme, overrides in schemes:
        result = _run(scheme, workload, records, cores, cache, **overrides)
        breakdown = result.in_traffic_bytes
        hits = max(1, result.dram_cache_hits)
        misses = max(1, result.dram_cache_misses)
        tag_bytes = breakdown.get("Tag", 0) + breakdown.get("Counter", 0)
        hit_bytes = breakdown.get("HitData", 0) + tag_bytes
        replacement_bytes = breakdown.get("Replacement", 0)
        rows.append(
            {
                "scheme": label,
                "hit_traffic_bytes": round(hit_bytes / hits, 1),
                "tag_bpi": round(tag_bytes / max(1, result.instructions), 3),
                "replacement_bytes_per_miss": round(replacement_bytes / misses, 1),
                "miss_rate": round(result.dram_cache_miss_rate, 3),
                "replacements": int(result.scheme_stats.get("page_fills", result.scheme_stats.get("fills", 0))),
            }
        )
    return {
        "headers": ["scheme", "hit_traffic_bytes", "tag_bpi", "replacement_bytes_per_miss", "miss_rate", "replacements"],
        "rows": rows,
        "summary": {},
    }


# --------------------------------------------------------------------------- Extensions (Section 5.4)


def extension_large_pages(
    workloads: Optional[Sequence[str]] = None,
    records_per_core: Optional[int] = None,
    num_cores: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    store=None,
) -> Dict:
    """Section 5.4.1: Banshee with 2 MB pages vs 4 KB pages on graph workloads."""
    workloads, records, cores, cache = _defaults(
        workloads, records_per_core, num_cores, cache, GRAPH_WORKLOADS, records_fraction=0.5, store=store
    )
    capacity = 64 * MB  # enlarge the cache so that whole 2 MB pages are cacheable
    rows: List[Dict] = []
    gains: List[float] = []
    for workload in workloads:
        small_config = bench_config("banshee", num_cores=cores)
        small_config = small_config.with_overrides(
            in_package_dram=small_config.in_package_dram.__class__(
                name="in-package", capacity_bytes=capacity, num_channels=4
            )
        )
        small = run_simulation(small_config, workload_name=workload, records_per_core=records, cache=cache)

        large_config = bench_config("banshee", num_cores=cores, large_page_fraction=1.0)
        large_config = large_config.with_overrides(
            in_package_dram=large_config.in_package_dram.__class__(
                name="in-package", capacity_bytes=capacity, num_channels=4
            )
        )
        large = run_simulation(
            large_config,
            workload_name=workload,
            records_per_core=records,
            cache=cache,
            page_size=large_config.dram_cache.large_page_size,
        )
        gain = small.cycles / large.cycles - 1.0
        gains.append(gain)
        rows.append(
            {
                "workload": workload,
                "speedup_4k": 1.0,
                "speedup_2m": round(small.cycles / large.cycles, 3),
                "gain_pct": round(100.0 * gain, 2),
            }
        )
    return {
        "headers": ["workload", "speedup_4k", "speedup_2m", "gain_pct"],
        "rows": rows,
        "summary": {"average_gain_pct": round(100.0 * sum(gains) / len(gains), 2) if gains else 0.0},
    }


def extension_bandwidth_balance(
    workloads: Optional[Sequence[str]] = None,
    records_per_core: Optional[int] = None,
    num_cores: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    store=None,
) -> Dict:
    """Section 5.4.2: BATMAN-style bandwidth balancing on Alloy and Banshee."""
    workloads, records, cores, cache = _defaults(
        workloads, records_per_core, num_cores, cache, SWEEP_WORKLOADS, records_fraction=0.5, store=store
    )
    rows: List[Dict] = []
    summary: Dict[str, float] = {}
    for label, scheme in (("Alloy", "alloy"), ("Banshee", "banshee")):
        gains = []
        for workload in workloads:
            plain = _run(scheme, workload, records, cores, cache)
            balanced = _run(scheme, workload, records, cores, cache, bandwidth_balance=True)
            gains.append(plain.cycles / balanced.cycles - 1.0)
        avg_gain = 100.0 * sum(gains) / len(gains)
        max_gain = 100.0 * max(gains)
        rows.append(
            {
                "scheme": label,
                "avg_gain_pct": round(avg_gain, 2),
                "max_gain_pct": round(max_gain, 2),
            }
        )
        summary[label] = round(avg_gain, 2)
    return {"headers": ["scheme", "avg_gain_pct", "max_gain_pct"], "rows": rows, "summary": summary}
