"""Analyzer configuration: hot-path roots, package scopes, class lists.

The defaults encode this repository's invariants; tests construct custom
configurations pointing at fixture trees.  Everything is data — the rules in
:mod:`repro.analyze.rules` read these fields rather than hard-coding names —
so a layer refactor updates this file, not the rule logic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple


@dataclass(frozen=True)
class AnalyzerConfig:
    """Knobs for every rule; the committed invariants live in DEFAULT_CONFIG."""

    #: Fully-hot functions, in addition to any ``# repro: hotpath`` markers in
    #: source (a marker on a ``def`` makes that function a root; a marker on a
    #: loop statement roots just the loop body).  Matching is by dotted
    #: qualname suffix, so entries survive a src-layout move.
    hotpath_roots: Tuple[str, ...] = ("repro.sim.system.System.process_record",)

    #: Callees never followed from hot code: work that call sites guard to run
    #: only at window boundaries (observer snapshots, event emission, the
    #: warmup edge), not per record.  ``Class.method``, ``Class.*`` or a bare
    #: method name.
    hotpath_cold_calls: Tuple[str, ...] = (
        "TimelineObserver.*",
        "Histogram.snapshot",
        "EventLog.emit",
        "System.begin_measurement",
        # Banshee's batched software PTE-update routine (Section 3.4): remaps
        # accumulate in the tag buffers precisely so this work is amortised
        # over thousands of records, not paid per record.
        "TagBufferCoherence.flush",
        # HMA's epoch remap: runs once per hma_interval_ms of simulated time.
        "HmaCache._remap",
        # Controller edges: every loop guards these behind
        # ``processed >= ctrl_next`` (the controller's own requested cut),
        # so snapshot capture, watch flushes and inspector mailbox work run
        # at run cuts, never per record.
        "_edge_single",
        "_edge_from_remaining",
        "_edge",
        "_controller_stop",
        "on_finish",
    )

    #: Classes that must declare ``__slots__``: the per-access objects the
    #: record pipeline mutates in place.  Guarded statically so a refactor
    #: cannot silently reintroduce dict-backed instances on the hot path.
    hotpath_slots_classes: Tuple[str, ...] = (
        "repro.memctrl.request.MappingInfo",
        "repro.memctrl.request.MemRequest",
        "repro.memctrl.request.AccessResult",
        "repro.cache.hierarchy.HierarchyAccess",
        "repro.cache.sram_cache.Eviction",
        "repro.cache.sram_cache.CacheAccessResult",
        "repro.dram.channel.ChannelAccess",
        "repro.dram.device.DramAccessResult",
    )

    #: Packages that must be deterministic: no wall clocks, no unseeded RNG,
    #: no unordered set iteration, no unsorted directory listings.  ``obs`` is
    #: deliberately absent — wall-clock timestamps are its whole point.
    determinism_packages: Tuple[str, ...] = (
        "repro.sim",
        "repro.dramcache",
        "repro.cache",
        "repro.vm",
        "repro.cpu",
        "repro.workloads",
    )

    #: Name of the event-schema constant cross-checked against emit sites.
    event_types_constant: str = "EVENT_TYPES"

    #: Method-name pairs treated as a serde couple on one class.
    serde_pairs: Tuple[Tuple[str, str], ...] = (("to_dict", "from_dict"),)

    #: Class whose fields variant overrides must name, and the helper/class
    #: call sites in the variants module that carry overrides.
    variant_config_class: str = "DramCacheConfig"
    variant_module_suffix: str = ".variants"

    #: Extra dotted call names treated as wall-clock reads (beyond time.*).
    wall_clock_calls: Tuple[str, ...] = (
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    )

    #: Unsorted-listing calls (dotted names and bare method names for
    #: ``Path``-style objects); fine when directly wrapped in ``sorted()``.
    listing_calls: Tuple[str, ...] = ("glob.glob", "glob.iglob", "os.listdir", "os.scandir")
    listing_methods: Tuple[str, ...] = ("glob", "rglob", "iterdir")

    extra: Tuple[Tuple[str, str], ...] = field(default_factory=tuple)


DEFAULT_CONFIG = AnalyzerConfig()
