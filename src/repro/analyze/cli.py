"""``python -m repro.analyze`` — the invariant gate.

Usage::

    python -m repro.analyze src/repro                  # all rules, text output
    python -m repro.analyze src/repro --rule determinism,serde-symmetry
    python -m repro.analyze src/repro --format json
    python -m repro.analyze src/repro --write-baseline # refresh grandfathered set
    python -m repro.analyze --list-rules

Exit status: 0 when no *new* findings remain after inline suppressions and
the baseline; 1 when new findings exist (this is the CI gate); 2 on usage
errors.  Stale baseline entries (fixed findings still listed) are reported
but do not fail the gate — delete them with ``--write-baseline``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.analyze.baseline import (
    DEFAULT_BASELINE,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.analyze.core import all_rules, run_analysis


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analyze",
        description="Static analysis enforcing the repo's structural invariants "
        "(hot-path purity, determinism, serde symmetry, variant conformance).",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog="rules:\n"
        + "\n".join(
            f"  {name:<16s} {rule.description}" for name, rule in sorted(all_rules().items())
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        default=None,
        metavar="RULE[,RULE]",
        help="run only these rules (repeatable, comma-separable); default: all",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help=f"baseline file of grandfathered findings (default: {DEFAULT_BASELINE}; "
        "an absent file is an empty baseline)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file (report every finding)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list registered rules and exit"
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for name, rule in sorted(all_rules().items()):
            print(f"{name:<16s} {rule.description}")
        return 0

    rules: Optional[List[str]] = None
    if args.rule:
        rules = [token.strip() for chunk in args.rule for token in chunk.split(",") if token.strip()]

    try:
        findings = run_analysis(args.paths, rules=rules)
    except (ValueError, FileNotFoundError, SyntaxError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if args.write_baseline:
        count = write_baseline(args.baseline, findings)
        print(f"wrote {count} baseline entr{'y' if count == 1 else 'ies'} to {args.baseline}")
        return 0

    baseline = {} if args.no_baseline else load_baseline(args.baseline)
    new, grandfathered, stale = apply_baseline(findings, baseline)

    if args.format == "json":
        print(
            json.dumps(
                {
                    "findings": [finding.to_dict() for finding in new],
                    "grandfathered": [finding.to_dict() for finding in grandfathered],
                    "stale_baseline": stale,
                    "counts": {
                        "new": len(new),
                        "grandfathered": len(grandfathered),
                        "stale_baseline": len(stale),
                    },
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        for finding in new:
            print(finding.render())
        for entry in stale:
            print(
                f"stale baseline entry {entry['fingerprint']} "
                f"({entry['rule']}: {entry['message']}) — fixed; refresh with "
                f"--write-baseline"
            )
        summary = (
            f"{len(new)} finding{'s' if len(new) != 1 else ''}"
            f" ({len(grandfathered)} grandfathered, {len(stale)} stale baseline)"
        )
        print(summary)
    return 1 if new else 0
