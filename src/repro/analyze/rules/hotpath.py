"""Hot-path purity rules.

The per-record pipeline (PR 2) is allocation-free by construction; these
rules keep it that way at the AST level.  Reachability comes from
:func:`repro.analyze.callgraph.hot_graph`; anything it can reach once per
trace record must not:

* build containers (list/dict/set/tuple displays, comprehensions,
  allocating builtin calls, analyzed-class constructions) — ``hotpath-alloc``;
* create closures (``lambda``, nested ``def``) — ``hotpath-alloc``;
* format strings (f-strings, ``%``, ``str.format``) — ``hotpath-alloc``;
* pack ``*args``/``**kwargs`` at call sites — ``hotpath-alloc``;
* create attributes outside ``__init__`` — ``hotpath-attr``.

Error paths are exempt: an allocation whose nearest statement is ``raise``
only runs when the simulation is already failing loudly.

``hotpath-slots`` separately requires the configured per-access record
classes (and any class constructed on the hot path) to declare
``__slots__``.
"""

from __future__ import annotations

import ast
from typing import List

from repro.analyze.callgraph import HotSpan, build_index, hot_graph
from repro.analyze.core import AnalysisContext, Finding, register_rule

_ALLOCATING_BUILTINS = frozenset(
    {"list", "dict", "set", "tuple", "frozenset", "bytearray", "vars", "locals"}
)


def _inside_raise(span: HotSpan, node: ast.AST) -> bool:
    module = span.function.module
    for ancestor in module.ancestors(node):
        if isinstance(ancestor, ast.Raise):
            return True
        if ancestor is span.region:
            break
    return False


def _constant_tuple(node: ast.AST) -> bool:
    return isinstance(node, ast.Tuple) and all(
        isinstance(element, ast.Constant) for element in node.elts
    )


def _parallel_unpack(span: HotSpan, node: ast.Tuple) -> bool:
    """True for ``a, b = x, y`` right-hand sides (2-3 elements).

    CPython's peephole pass compiles these to register rotations without
    materialising a tuple, so they are not allocations.
    """
    if len(node.elts) > 3:
        return False
    parent = span.function.module.parent_of(node)
    return (
        isinstance(parent, ast.Assign)
        and parent.value is node
        and all(isinstance(t, (ast.Tuple, ast.List)) for t in parent.targets)
    )


def _alloc_message(node: ast.AST) -> str:
    if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
        return "comprehension allocates per record"
    if isinstance(node, ast.List):
        return "list display allocates per record"
    if isinstance(node, ast.Dict):
        return "dict display allocates per record"
    if isinstance(node, ast.Set):
        return "set display allocates per record"
    if isinstance(node, ast.Tuple):
        return "tuple display allocates per record"
    if isinstance(node, ast.Lambda):
        return "lambda creates a closure per record"
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return f"nested def {node.name!r} creates a closure per record"
    if isinstance(node, ast.JoinedStr):
        return "f-string formats (and allocates) per record"
    return "allocation on the hot path"


@register_rule(
    "hotpath-alloc",
    "no allocation-bearing constructs reachable from the per-record loop",
)
def check_hotpath_alloc(context: AnalysisContext) -> List[Finding]:
    graph = hot_graph(context)
    findings: List[Finding] = []

    def report(span: HotSpan, node: ast.AST, message: str) -> None:
        if _inside_raise(span, node):
            return
        findings.append(
            span.function.module.finding(
                "hotpath-alloc",
                node,
                f"{message} (hot via {span.chain.split(' <- ')[-1]})",
                symbol=span.function.qualname,
            )
        )

    for span in graph.spans:
        for node in span.walk_region():
            if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                report(span, node, _alloc_message(node))
            elif isinstance(node, (ast.List, ast.Dict, ast.Set)):
                if isinstance(getattr(node, "ctx", ast.Load()), ast.Store):
                    continue
                report(span, node, _alloc_message(node))
            elif isinstance(node, ast.Tuple):
                if (
                    isinstance(node.ctx, ast.Store)
                    or _constant_tuple(node)
                    or _parallel_unpack(span, node)
                ):
                    continue  # unpack targets / folded constants / a,b = x,y
                report(span, node, _alloc_message(node))
            elif isinstance(node, (ast.Lambda, ast.FunctionDef, ast.AsyncFunctionDef)):
                if node is span.region:
                    continue
                report(span, node, _alloc_message(node))
            elif isinstance(node, ast.JoinedStr):
                report(span, node, _alloc_message(node))
            elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mod):
                if isinstance(node.left, (ast.Constant,)) and isinstance(
                    getattr(node.left, "value", None), str
                ):
                    report(span, node, "%-formatting allocates per record")
            elif isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Name) and func.id in _ALLOCATING_BUILTINS:
                    report(span, node, f"builtin {func.id}() allocates per record")
                elif (
                    isinstance(func, ast.Attribute)
                    and func.attr == "format"
                    and isinstance(func.value, ast.Constant)
                    and isinstance(func.value.value, str)
                ):
                    report(span, node, "str.format allocates per record")
                if any(isinstance(arg, ast.Starred) for arg in node.args) or any(
                    keyword.arg is None for keyword in node.keywords
                ):
                    report(span, node, "*args/**kwargs packing allocates per record")

    for span, call, cls in graph.constructions:
        if _inside_raise(span, call):
            continue
        findings.append(
            span.function.module.finding(
                "hotpath-alloc",
                call,
                f"constructs {cls.name} per record",
                symbol=span.function.qualname,
            )
        )
    return findings


@register_rule(
    "hotpath-attr",
    "hot-path methods must not create attributes outside __init__",
)
def check_hotpath_attr(context: AnalysisContext) -> List[Finding]:
    graph = hot_graph(context)
    index = build_index(context)
    findings: List[Finding] = []
    for span in graph.spans:
        func = span.function
        if not func.class_name or func.name == "__init__":
            continue
        owner = index.classes.get(f"{func.module.name}.{func.class_name}")
        if owner is None:
            continue
        known = owner.init_attrs | owner.class_attrs | (owner.slots or set())
        for node in span.walk_region():
            if not isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                continue
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and target.attr not in known
                ):
                    findings.append(
                        func.module.finding(
                            "hotpath-attr",
                            node,
                            f"creates attribute self.{target.attr} outside __init__ "
                            f"(forces dict-backed instances and hides state from "
                            f"__init__ readers)",
                            symbol=func.qualname,
                        )
                    )
    return findings


@register_rule(
    "hotpath-slots",
    "per-access record classes must declare __slots__",
)
def check_hotpath_slots(context: AnalysisContext) -> List[Finding]:
    graph = hot_graph(context)
    index = build_index(context)
    findings: List[Finding] = []
    required = {}
    for suffix in context.config.hotpath_slots_classes:
        info = index.class_for_qualname_suffix(suffix)
        if info is not None:
            required[info.qualname] = info
    for _span, _call, cls in graph.constructions:
        required.setdefault(cls.qualname, cls)
    for qualname in sorted(required):
        info = required[qualname]
        if info.slots is None:
            findings.append(
                info.module.finding(
                    "hotpath-slots",
                    info.node,
                    f"class {info.name} is used on the hot path but declares no "
                    f"__slots__",
                    symbol=qualname,
                )
            )
    return findings
