"""Determinism rule: simulation packages must be bit-reproducible.

Serial and parallel campaign execution are guaranteed bit-identical (PR 1,
PR 5) because simulation code derives every value from the configuration
seed and simulated state.  This rule statically bans the constructs that
break that guarantee inside the configured packages:

* the stdlib ``random`` module (process-global, unseeded by default) and
  numpy's legacy global RNG (``np.random.rand`` & co.);
* ``np.random.default_rng()`` *without* a seed argument;
* wall-clock reads (``time.time``, ``datetime.now``, ...);
* iteration over set displays / ``set(...)`` calls (hash-order dependent);
* ``glob``/``listdir``-style directory listings not wrapped in ``sorted()``
  (filesystem-order dependent).

``repro.obs`` is exempt by scope — observability records wall-clock
timestamps on purpose — and intentional uses inside simulation packages
(the engine's wall-time measurement, reporting-only and excluded from
``identity_dict``) carry an inline ``# repro: allow[determinism]``.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from repro.analyze.core import AnalysisContext, Finding, Module, dotted_name, register_rule


def _enclosing_symbol(module: Module, node: ast.AST) -> str:
    for ancestor in module.ancestors(node):
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return ancestor.name
    return ""


def _call_dotted(module: Module, call: ast.Call) -> Optional[str]:
    if isinstance(call.func, ast.Attribute):
        return dotted_name(call.func, module.imports)
    if isinstance(call.func, ast.Name):
        return module.imports.get(call.func.id)
    return None


def _is_sorted_wrapped(module: Module, call: ast.Call) -> bool:
    parent = module.parent_of(call)
    return (
        isinstance(parent, ast.Call)
        and isinstance(parent.func, ast.Name)
        and parent.func.id == "sorted"
    )


@register_rule(
    "determinism",
    "simulation packages: no wall clocks, unseeded RNG, set iteration order, "
    "or unsorted directory listings",
)
def check_determinism(context: AnalysisContext) -> List[Finding]:
    config = context.config
    findings: List[Finding] = []
    for module in context.modules_under(config.determinism_packages):
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                _check_call(module, node, context, findings)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                _check_set_iteration(module, node.iter, findings)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                for generator in node.generators:
                    _check_set_iteration(module, generator.iter, findings)
    return findings


def _check_call(
    module: Module, call: ast.Call, context: AnalysisContext, findings: List[Finding]
) -> None:
    config = context.config
    dotted = _call_dotted(module, call)
    symbol = _enclosing_symbol(module, call)
    if dotted is None:
        # Path-style listing methods resolve through objects, not imports.
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr in config.listing_methods
            and not _is_sorted_wrapped(module, call)
        ):
            findings.append(
                module.finding(
                    "determinism",
                    call,
                    f".{call.func.attr}() iterates the filesystem in unspecified "
                    f"order; wrap in sorted()",
                    symbol=symbol,
                )
            )
        return
    if dotted in config.wall_clock_calls:
        findings.append(
            module.finding(
                "determinism",
                call,
                f"{dotted}() reads the wall clock; derive timing from simulated "
                f"state (or move to repro.obs)",
                symbol=symbol,
            )
        )
    elif dotted == "random" or dotted.startswith("random."):
        findings.append(
            module.finding(
                "determinism",
                call,
                f"{dotted}() uses the process-global stdlib RNG; use "
                f"repro.util.rng.DeterministicRng seeded from the config",
                symbol=symbol,
            )
        )
    elif dotted == "numpy.random.default_rng":
        if not call.args and not call.keywords:
            findings.append(
                module.finding(
                    "determinism",
                    call,
                    "np.random.default_rng() without a seed is entropy-seeded; "
                    "pass a seed derived from the config",
                    symbol=symbol,
                )
            )
    elif dotted.startswith("numpy.random."):
        findings.append(
            module.finding(
                "determinism",
                call,
                f"{dotted}() drives numpy's legacy global RNG; use a seeded "
                f"default_rng / DeterministicRng instead",
                symbol=symbol,
            )
        )
    elif dotted in config.listing_calls and not _is_sorted_wrapped(module, call):
        findings.append(
            module.finding(
                "determinism",
                call,
                f"{dotted}() returns entries in unspecified order; wrap in sorted()",
                symbol=symbol,
            )
        )


def _check_set_iteration(module: Module, iter_node: ast.AST, findings: List[Finding]) -> None:
    is_set_display = isinstance(iter_node, (ast.Set, ast.SetComp))
    is_set_call = (
        isinstance(iter_node, ast.Call)
        and isinstance(iter_node.func, ast.Name)
        and iter_node.func.id in ("set", "frozenset")
    )
    if is_set_display or is_set_call:
        findings.append(
            module.finding(
                "determinism",
                iter_node,
                "iterating a set visits elements in hash order; sort it first",
                symbol=_enclosing_symbol(module, iter_node),
            )
        )
