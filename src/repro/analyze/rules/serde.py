"""Serde symmetry rules.

``serde-symmetry`` cross-checks every class that defines both ``to_dict``
and ``from_dict``: each key the writer produces must be accepted by the
reader and vice versa.  Both sides are extracted statically:

* explicit keys — dict-literal keys in ``return {...}``, ``payload["k"] =``
  assignments, ``payload["k"]`` / ``.get("k")`` / ``.pop("k")`` reads;
* wildcard sides — ``dataclasses.asdict(self)`` writes every field;
  ``cls(**data)`` / ``dataclass_from_dict(cls, payload)`` accepts exactly
  the class's fields (dataclass fields, or ``__init__`` parameters).

A side whose keys cannot be determined at all is skipped rather than
guessed at.

``event-schema`` checks that every ``.emit("name", ...)`` /
``make_event("name", ...)`` call site uses an event name declared in the
``EVENT_TYPES`` schema constant (:mod:`repro.obs.events`), so an emitter
typo fails CI instead of producing unreadable logs.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

from repro.analyze.core import AnalysisContext, Finding, Module, register_rule

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


@dataclass
class KeySet:
    """Statically extracted key usage of one serde side."""

    explicit: Set[str] = field(default_factory=set)
    wildcard: bool = False   #: covers every class field
    unknown: bool = False    #: could not be determined; skip checks

    def effective(self, fields: Set[str]) -> Set[str]:
        return self.explicit | (fields if self.wildcard else set())


def _is_dataclass(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = target.attr if isinstance(target, ast.Attribute) else getattr(target, "id", "")
        if name == "dataclass":
            return True
    return False


def _class_fields(node: ast.ClassDef) -> Set[str]:
    """Acceptable constructor keys: dataclass fields or __init__ parameters."""
    if _is_dataclass(node):
        names = set()
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                annotation = ast.dump(stmt.annotation)
                if "ClassVar" not in annotation:
                    names.add(stmt.target.id)
        return names
    init = next(
        (s for s in node.body if isinstance(s, _FUNCTION_NODES) and s.name == "__init__"),
        None,
    )
    if init is None:
        return set()
    args = init.args
    names = {a.arg for a in args.args + args.kwonlyargs} - {"self"}
    return names


def _const_str(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _callee_name(call: ast.Call) -> str:
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _writer_keys(func: ast.AST) -> KeySet:
    keys = KeySet()
    returned_names: Set[str] = set()
    determined = False
    for node in ast.walk(func):
        if isinstance(node, ast.Return) and node.value is not None:
            if isinstance(node.value, ast.Dict):
                for key_node in node.value.keys:
                    key = _const_str(key_node) if key_node is not None else None
                    if key is not None:
                        keys.explicit.add(key)
                determined = True
            elif isinstance(node.value, ast.Name):
                returned_names.add(node.value.id)
            elif isinstance(node.value, ast.Call) and _callee_name(node.value) == "asdict":
                keys.wildcard = True
                determined = True
    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name) and target.id in returned_names:
                if isinstance(node.value, ast.Dict):
                    for key_node in node.value.keys:
                        key = _const_str(key_node) if key_node is not None else None
                        if key is not None:
                            keys.explicit.add(key)
                    determined = True
                elif isinstance(node.value, ast.Call) and _callee_name(node.value) == "asdict":
                    keys.wildcard = True
                    determined = True
            elif (
                isinstance(target, ast.Subscript)
                and isinstance(target.value, ast.Name)
                and target.value.id in returned_names
            ):
                key = _const_str(target.slice)
                if key is not None:
                    keys.explicit.add(key)
                    determined = True
    if not determined:
        keys.unknown = True
    return keys


def _reader_keys(func: ast.AST) -> KeySet:
    keys = KeySet()
    determined = False
    for node in ast.walk(func):
        if isinstance(node, ast.Subscript) and isinstance(getattr(node, "ctx", None), ast.Load):
            key = _const_str(node.slice)
            if key is not None:
                keys.explicit.add(key)
                determined = True
        elif isinstance(node, ast.Call):
            name = _callee_name(node)
            if name in ("get", "pop") and node.args:
                key = _const_str(node.args[0])
                if key is not None:
                    keys.explicit.add(key)
                    determined = True
            elif name == "dataclass_from_dict":
                keys.wildcard = True
                determined = True
            if any(keyword.arg is None for keyword in node.keywords):
                keys.wildcard = True  # cls(**data): accepts exactly the fields
                determined = True
    if not determined:
        keys.unknown = True
    return keys


@register_rule(
    "serde-symmetry",
    "every to_dict key must be consumed by the paired from_dict, and vice versa",
)
def check_serde_symmetry(context: AnalysisContext) -> List[Finding]:
    findings: List[Finding] = []
    for module in context.modules:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for writer_name, reader_name in context.config.serde_pairs:
                methods = {
                    stmt.name: stmt
                    for stmt in node.body
                    if isinstance(stmt, _FUNCTION_NODES)
                }
                writer = methods.get(writer_name)
                reader = methods.get(reader_name)
                if writer is None or reader is None:
                    continue
                writes = _writer_keys(writer)
                reads = _reader_keys(reader)
                if writes.unknown or reads.unknown:
                    continue
                fields = _class_fields(node)
                written = writes.effective(fields)
                read = reads.effective(fields)
                for key in sorted(written - read):
                    findings.append(
                        module.finding(
                            "serde-symmetry",
                            writer,
                            f"{writer_name} writes key {key!r} that {reader_name} "
                            f"never consumes",
                            symbol=f"{node.name}.{writer_name}",
                        )
                    )
                for key in sorted(read - written):
                    findings.append(
                        module.finding(
                            "serde-symmetry",
                            reader,
                            f"{reader_name} consumes key {key!r} that {writer_name} "
                            f"never writes",
                            symbol=f"{node.name}.{reader_name}",
                        )
                    )
    return findings


# --------------------------------------------------------------------------- event schema


def _schema_names(context: AnalysisContext) -> Tuple[Optional[str], Set[str]]:
    """(defining module name, declared event names) for the schema constant."""
    constant = context.config.event_types_constant
    for module in context.modules:
        for node in module.tree.body:
            if not isinstance(node, ast.Assign):
                continue
            if not any(
                isinstance(target, ast.Name) and target.id == constant
                for target in node.targets
            ):
                continue
            names = {
                value.value
                for value in ast.walk(node.value)
                if isinstance(value, ast.Constant) and isinstance(value.value, str)
            }
            if names:
                return module.name, names
    return None, set()


@register_rule(
    "event-schema",
    "emitted event names must appear in the EVENT_TYPES schema",
)
def check_event_schema(context: AnalysisContext) -> List[Finding]:
    schema_module, names = _schema_names(context)
    if schema_module is None:
        return []
    findings: List[Finding] = []
    for module in context.modules:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = _callee_name(node)
            if callee not in ("emit", "make_event") or not node.args:
                continue
            event = _const_str(node.args[0])
            if event is not None and event not in names:
                findings.append(
                    module.finding(
                        "event-schema",
                        node,
                        f"emits unknown event {event!r}; declare it in "
                        f"{schema_module}.{context.config.event_types_constant} "
                        f"or fix the name",
                    )
                )
    return findings
