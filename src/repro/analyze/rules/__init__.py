"""Rule registry population: importing this package registers every rule."""

from repro.analyze.rules import determinism, hotpath, serde, variants  # noqa: F401
