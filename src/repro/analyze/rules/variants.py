"""Variant conformance rule.

Declared scheme variants are configuration deltas; each override must name a
real field of the configuration dataclass or the variant silently does
nothing (the runtime check in ``SchemeVariant.__post_init__`` only fires
when the variant module is actually imported — this rule fires on every
analyzer run, before any simulation).

The rule finds the configuration class by name
(``AnalyzerConfig.variant_config_class``) and checks, in any module whose
dotted name ends with ``.variants``:

* keyword arguments of ``_builtin(name, base, axis, description, **overrides)``;
* constant keys of ``overrides={...}`` passed to ``SchemeVariant(...)``.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set

from repro.analyze.core import AnalysisContext, Finding, register_rule

#: _builtin's non-override keywords (its named parameters).
_BUILTIN_PARAMS = frozenset({"name", "base", "axis", "description"})


def _config_fields(context: AnalysisContext) -> Optional[Set[str]]:
    class_name = context.config.variant_config_class
    for module in context.modules:
        for node in module.tree.body:
            if isinstance(node, ast.ClassDef) and node.name == class_name:
                return {
                    stmt.target.id
                    for stmt in node.body
                    if isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)
                    and "ClassVar" not in ast.dump(stmt.annotation)
                }
    return None


@register_rule(
    "variant-fields",
    "variant overrides must name real configuration fields",
)
def check_variant_fields(context: AnalysisContext) -> List[Finding]:
    fields = _config_fields(context)
    if not fields:
        return []
    suffix = context.config.variant_module_suffix
    findings: List[Finding] = []
    for module in context.modules:
        if not (module.name.endswith(suffix) or module.name == suffix.lstrip(".")):
            continue
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = node.func
            name = callee.id if isinstance(callee, ast.Name) else getattr(callee, "attr", "")
            if name == "_builtin":
                for keyword in node.keywords:
                    if keyword.arg and keyword.arg not in _BUILTIN_PARAMS and keyword.arg not in fields:
                        findings.append(
                            module.finding(
                                "variant-fields",
                                node,
                                f"variant override {keyword.arg!r} is not a field of "
                                f"{context.config.variant_config_class}",
                            )
                        )
            elif name == "SchemeVariant":
                for keyword in node.keywords:
                    if keyword.arg == "overrides" and isinstance(keyword.value, ast.Dict):
                        for key_node in keyword.value.keys:
                            if (
                                isinstance(key_node, ast.Constant)
                                and isinstance(key_node.value, str)
                                and key_node.value not in fields
                            ):
                                findings.append(
                                    module.finding(
                                        "variant-fields",
                                        node,
                                        f"variant override {key_node.value!r} is not a "
                                        f"field of {context.config.variant_config_class}",
                                    )
                                )
    return findings
