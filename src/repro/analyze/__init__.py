"""repro.analyze: invariant-enforcing static analysis.

AST-level proofs of the repo's structural guarantees — an allocation-free
per-record hot path, deterministic simulation packages, symmetric
``to_dict``/``from_dict`` pairs, schema-conformant event emission, and
variant overrides that name real configuration fields — run on every PR via
``python -m repro.analyze src/repro`` (see the CI ``analyze`` job).

Public surface:

* :func:`repro.analyze.core.run_analysis` / :class:`~repro.analyze.core.Finding`
* :func:`repro.analyze.core.register_rule` — the pluggable rule registry
* :class:`repro.analyze.config.AnalyzerConfig` — the declared invariants
* :mod:`repro.analyze.baseline` — grandfathered-finding management
"""

from repro.analyze.config import AnalyzerConfig, DEFAULT_CONFIG
from repro.analyze.core import Finding, all_rules, register_rule, run_analysis

__all__ = [
    "AnalyzerConfig",
    "DEFAULT_CONFIG",
    "Finding",
    "all_rules",
    "register_rule",
    "run_analysis",
]
