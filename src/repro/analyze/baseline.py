"""Baseline file: grandfathered findings that do not fail the gate.

The baseline is a committed JSON file mapping finding fingerprints
(:attr:`repro.analyze.core.Finding.fingerprint` — location-insensitive, so
edits elsewhere in a file do not invalidate entries) to a human-readable
record of what was grandfathered.  The CI gate fails on any finding *not*
in the baseline; entries whose finding has been fixed are reported as stale
so the baseline shrinks over time instead of rotting.

Refresh with ``python -m repro.analyze src/repro --write-baseline``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

from repro.analyze.core import Finding

#: Default committed location, relative to the repository root.
DEFAULT_BASELINE = "analyze-baseline.json"

_VERSION = 1


def load_baseline(path: Union[str, Path]) -> Dict[str, Dict[str, object]]:
    """fingerprint -> entry; an absent file is an empty baseline."""
    baseline_path = Path(path)
    if not baseline_path.exists():
        return {}
    payload = json.loads(baseline_path.read_text(encoding="utf-8"))
    if payload.get("version") != _VERSION:
        raise ValueError(
            f"unsupported baseline version {payload.get('version')!r} in {path}"
        )
    return {entry["fingerprint"]: entry for entry in payload.get("findings", [])}


def write_baseline(path: Union[str, Path], findings: Sequence[Finding]) -> int:
    """Write ``findings`` as the new baseline; returns the entry count."""
    entries = []
    seen = set()
    for finding in sorted(findings, key=lambda f: (f.rule, f.module, f.symbol, f.message)):
        if finding.fingerprint in seen:
            continue
        seen.add(finding.fingerprint)
        entries.append(
            {
                "fingerprint": finding.fingerprint,
                "rule": finding.rule,
                "module": finding.module,
                "symbol": finding.symbol,
                "message": finding.message,
            }
        )
    payload = {"version": _VERSION, "findings": entries}
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return len(entries)


def apply_baseline(
    findings: Sequence[Finding], baseline: Dict[str, Dict[str, object]]
) -> Tuple[List[Finding], List[Finding], List[Dict[str, object]]]:
    """Split findings into (new, grandfathered) and report stale entries."""
    new: List[Finding] = []
    grandfathered: List[Finding] = []
    matched = set()
    for finding in findings:
        if finding.fingerprint in baseline:
            matched.add(finding.fingerprint)
            grandfathered.append(finding)
        else:
            new.append(finding)
    stale = [entry for fp, entry in sorted(baseline.items()) if fp not in matched]
    return new, grandfathered, stale
