"""Module entry point: ``python -m repro.analyze``."""

from repro.analyze.cli import main

raise SystemExit(main())
