"""AST call graph and hot-path reachability.

The hot-path rules need to know which functions can execute once per trace
record.  Roots come from two places (:class:`~repro.analyze.config.AnalyzerConfig`):

* ``hotpath_roots`` — dotted qualname suffixes of fully-hot functions;
* ``# repro: hotpath`` marker comments in source — on a ``def`` line the
  whole function is a root, on a ``while``/``for`` statement only that loop
  body is (which is how the engine's record loop is hot while its setup
  prologue is not).

Call resolution is type-aware where the code gives types away and
conservative everywhere else:

* ``self.attr.m(...)`` resolves through attribute types inferred from
  ``__init__`` (``self.hierarchy = CacheHierarchy(...)``, constructor-typed
  parameters, lists of constructed elements), then an MRO walk over analyzed
  base classes — *plus* every analyzed subclass override, so
  ``self.scheme.access(...)`` on a ``DramCacheScheme``-typed attribute links
  to every scheme implementation;
* attribute aliases (``self._translate = self.page_table.translate``) and
  local aliases (``process_record = system.process_record``) are followed;
* an *untyped* receiver falls back to linking every analyzed method of that
  name — except ubiquitous container-protocol names (``get``, ``keys``,
  ``add``, ...), which would otherwise drag unrelated classes in through
  every ``dict.get`` call.

Over-approximating reachability is the right failure mode for an invariant
prover — a spurious edge surfaces as a reviewable finding, a missed edge
would hide a real allocation.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple, Union

from repro.analyze.core import AnalysisContext, HOTPATH_MARKER, Module

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)
_LOOP_NODES = (ast.While, ast.For)

#: Container-protocol method names never resolved through the global
#: name index: calling them on an untyped receiver is almost always a
#: dict/set/list operation, not a hot-path edge.
_GENERIC_METHODS = frozenset(
    {
        "get", "keys", "values", "items", "pop", "popitem", "setdefault",
        "update", "clear", "copy", "add", "discard", "remove", "append",
        "extend", "insert", "sort", "reverse", "count", "index",
        "popleft", "appendleft", "join", "split", "strip", "format",
        "startswith", "endswith", "encode", "decode", "to_dict", "from_dict",
    }
)


@dataclass
class FunctionInfo:
    """One analyzed function or method."""

    module: Module
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    qualname: str
    class_name: str = ""

    @property
    def name(self) -> str:
        return self.node.name  # type: ignore[attr-defined]


@dataclass
class ListOf:
    """Inferred container-of-instances type (``self.tlbs = [Tlb(...) ...]``)."""

    element: "ClassInfo"


InferredType = Union["ClassInfo", ListOf]


@dataclass
class ClassInfo:
    """One analyzed class: methods, attribute inventory, alias bindings."""

    module: Module
    node: ast.ClassDef
    qualname: str
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    base_names: List[str] = field(default_factory=list)
    #: Attributes assigned anywhere in ``__init__`` (``self.x = ...``).
    init_attrs: Set[str] = field(default_factory=set)
    #: Names bound in the class body (including ``__slots__`` entries).
    class_attrs: Set[str] = field(default_factory=set)
    slots: Optional[Set[str]] = None  #: None when no ``__slots__`` declared
    #: ``self.<alias> = <expr>`` bindings anywhere in the class.
    alias_exprs: Dict[str, List[ast.AST]] = field(default_factory=dict)
    #: Attribute types inferred from ``__init__`` assignments.
    attr_types: Dict[str, InferredType] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.node.name


class CodeIndex:
    """Cross-module symbol index the resolver works against."""

    def __init__(self) -> None:
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.methods_by_name: Dict[str, List[FunctionInfo]] = {}
        self.classes_by_name: Dict[str, List[ClassInfo]] = {}
        self.module_functions: Dict[Tuple[str, str], FunctionInfo] = {}
        self._subclasses: Optional[Dict[str, List[ClassInfo]]] = None

    def class_for_qualname_suffix(self, suffix: str) -> Optional[ClassInfo]:
        for qualname, info in self.classes.items():
            if qualname == suffix or qualname.endswith("." + suffix):
                return info
        return None

    def subclasses_of(self, info: ClassInfo) -> List[ClassInfo]:
        """Analyzed classes whose (transitive) syntactic bases include ``info``."""
        if self._subclasses is None:
            direct: Dict[str, List[ClassInfo]] = {}
            for cls in self.classes.values():
                for base_name in cls.base_names:
                    for base in self.classes_by_name.get(base_name, []):
                        direct.setdefault(base.qualname, []).append(cls)
            self._subclasses = direct
        result: List[ClassInfo] = []
        frontier = [info]
        seen = {info.qualname}
        while frontier:
            current = frontier.pop()
            for child in self._subclasses.get(current.qualname, []):
                if child.qualname not in seen:
                    seen.add(child.qualname)
                    result.append(child)
                    frontier.append(child)
        return result


def _is_self_attr(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    )


_CONTAINER_ANNOTATIONS = frozenset({"List", "Sequence", "Tuple", "list", "tuple"})


def _annotation_name(node: Optional[ast.AST]) -> Optional[str]:
    """Class name of a plain / Optional[...] / string annotation, if any."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.strip("'\"").split(".")[-1].split("[")[0]
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Subscript):  # Optional[X] / "List[X]" etc.
        inner = node.slice
        if isinstance(inner, ast.Tuple) and inner.elts:
            inner = inner.elts[0]
        return _annotation_name(inner)
    return None


def _annotation_type(
    index: "CodeIndex", node: Optional[ast.AST]
) -> Optional[InferredType]:
    """InferredType for an annotation: ``List[X]`` -> ListOf(X), else X."""
    name = _annotation_name(node)
    if name is None:
        return None
    candidates = index.classes_by_name.get(name, [])
    if len(candidates) != 1:
        return None
    container = (
        isinstance(node, ast.Subscript)
        and isinstance(node.value, ast.Name)
        and node.value.id in _CONTAINER_ANNOTATIONS
    )
    return ListOf(candidates[0]) if container else candidates[0]


def build_index(context: AnalysisContext) -> CodeIndex:
    cached = context.cache.get("code_index")
    if isinstance(cached, CodeIndex):
        return cached
    index = CodeIndex()
    for module in context.modules:
        for node in module.tree.body:
            if isinstance(node, _FUNCTION_NODES):
                info = FunctionInfo(module, node, f"{module.name}.{node.name}")
                index.functions[info.qualname] = info
                index.module_functions[(module.name, node.name)] = info
            elif isinstance(node, ast.ClassDef):
                _index_class(index, module, node)
    for info in index.classes.values():
        _infer_attr_types(index, info)
    context.cache["code_index"] = index
    return index


def _index_class(index: CodeIndex, module: Module, node: ast.ClassDef) -> None:
    info = ClassInfo(module, node, f"{module.name}.{node.name}")
    info.base_names = [
        base.id if isinstance(base, ast.Name) else getattr(base, "attr", "")
        for base in node.bases
    ]
    for stmt in node.body:
        if isinstance(stmt, _FUNCTION_NODES):
            method = FunctionInfo(module, stmt, f"{info.qualname}.{stmt.name}", node.name)
            info.methods[stmt.name] = method
            index.functions[method.qualname] = method
            index.methods_by_name.setdefault(stmt.name, []).append(method)
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    info.class_attrs.add(target.id)
                    if target.id == "__slots__":
                        info.slots = {
                            element.value
                            for element in ast.walk(stmt.value)
                            if isinstance(element, ast.Constant)
                            and isinstance(element.value, str)
                        }
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            info.class_attrs.add(stmt.target.id)
    for method in info.methods.values():
        for stmt in ast.walk(method.node):
            targets: List[ast.AST] = []
            value: Optional[ast.AST] = None
            if isinstance(stmt, ast.Assign):
                targets, value = list(stmt.targets), stmt.value
            elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
                targets, value = [stmt.target], getattr(stmt, "value", None)
            for target in targets:
                if not _is_self_attr(target):
                    continue
                attr = target.attr  # type: ignore[union-attr]
                if method.name == "__init__":
                    info.init_attrs.add(attr)
                # Only method-reference shapes become aliases; arbitrary
                # value expressions (constructor calls etc.) are not callables
                # and walking their internals would fabricate edges.
                if isinstance(stmt, ast.Assign) and isinstance(
                    value, (ast.Attribute, ast.IfExp)
                ):
                    info.alias_exprs.setdefault(attr, []).append(value)
    index.classes[info.qualname] = info
    index.classes_by_name.setdefault(node.name, []).append(info)


def _infer_attr_types(index: CodeIndex, info: ClassInfo) -> None:
    """Infer ``self.attr`` types from ``__init__`` constructor assignments."""
    init = info.methods.get("__init__")
    if init is None:
        return
    param_types: Dict[str, ClassInfo] = {}
    args = init.node.args  # type: ignore[attr-defined]
    for arg in list(args.args) + list(args.kwonlyargs):
        name = _annotation_name(arg.annotation)
        if name:
            candidates = index.classes_by_name.get(name, [])
            if len(candidates) == 1:
                param_types[arg.arg] = candidates[0]
    for method in info.methods.values():
        for stmt in ast.walk(method.node):
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, annotation, value = stmt.targets[0], None, stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                target, annotation, value = stmt.target, stmt.annotation, stmt.value
            else:
                continue
            if not _is_self_attr(target) or target.attr in info.attr_types:
                continue
            inferred = _annotation_type(index, annotation)
            if inferred is None and value is not None and method.name == "__init__":
                inferred = _infer_value_type(index, info, value, param_types)
            if inferred is not None:
                info.attr_types[target.attr] = inferred


def _infer_value_type(
    index: CodeIndex,
    info: ClassInfo,
    value: ast.AST,
    param_types: Dict[str, ClassInfo],
) -> Optional[InferredType]:
    if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
        constructed = _class_by_local_name(index, info.module, value.func.id)
        if constructed is not None:
            return constructed
    if isinstance(value, ast.Name):
        return param_types.get(value.id)
    if isinstance(value, (ast.List, ast.ListComp)):
        elements = value.elts if isinstance(value, ast.List) else [value.elt]
        for element in elements:
            if isinstance(element, ast.Call) and isinstance(element.func, ast.Name):
                constructed = _class_by_local_name(index, info.module, element.func.id)
                if constructed is not None:
                    return ListOf(constructed)
    return None


def _class_by_local_name(
    index: CodeIndex, module: Module, name: str
) -> Optional[ClassInfo]:
    local = index.classes.get(f"{module.name}.{name}")
    if local is not None:
        return local
    imported = module.imports.get(name)
    if imported is not None:
        return index.classes.get(imported)
    return None


# --------------------------------------------------------------------------- call resolution


def _matches_cold(patterns: Sequence[str], target: FunctionInfo) -> bool:
    for pattern in patterns:
        if "." in pattern:
            class_name, _, method = pattern.partition(".")
            if target.class_name == class_name and method in ("*", target.name):
                return True
        elif target.name == pattern:
            return True
    return False


class CallResolver:
    """Resolves call sites in one function to analyzed callees."""

    def __init__(self, index: CodeIndex, cold_calls: Sequence[str]) -> None:
        self.index = index
        self.cold_calls = cold_calls
        self._local_env_cache: Dict[int, Dict[str, InferredType]] = {}

    # ------------------------------------------------------------- type env

    def _local_env(self, func: FunctionInfo) -> Dict[str, InferredType]:
        cached = self._local_env_cache.get(id(func.node))
        if cached is not None:
            return cached
        env: Dict[str, InferredType] = {}
        owner = self._owning_class(func)
        args = func.node.args  # type: ignore[attr-defined]
        for arg in list(args.args) + list(args.kwonlyargs):
            if arg.arg == "self" and owner is not None:
                env["self"] = owner
                continue
            name = _annotation_name(arg.annotation)
            if name:
                candidates = self.index.classes_by_name.get(name, [])
                if len(candidates) == 1:
                    env[arg.arg] = candidates[0]
        for stmt in ast.walk(func.node):
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Name) and target.id not in env:
                    inferred = self._infer_expr(stmt.value, env, func)
                    if inferred is not None:
                        env[target.id] = inferred
        self._local_env_cache[id(func.node)] = env
        return env

    def _infer_expr(
        self,
        expr: ast.AST,
        env: Dict[str, InferredType],
        func: FunctionInfo,
    ) -> Optional[InferredType]:
        if isinstance(expr, ast.Name):
            return env.get(expr.id)
        if isinstance(expr, ast.Subscript):
            base = self._infer_expr(expr.value, env, func)
            if isinstance(base, ListOf):
                return base.element
            return None
        if isinstance(expr, ast.Attribute):
            base = self._infer_expr(expr.value, env, func)
            if isinstance(base, ClassInfo):
                return self._attr_type(base, expr.attr)
            return None
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
            return _class_by_local_name(self.index, func.module, expr.func.id)
        return None

    def _attr_type(self, owner: ClassInfo, attr: str, depth: int = 0) -> Optional[InferredType]:
        if attr in owner.attr_types:
            return owner.attr_types[attr]
        if depth >= 4:
            return None
        for base_name in owner.base_names:
            for base in self.index.classes_by_name.get(base_name, []):
                found = self._attr_type(base, attr, depth + 1)
                if found is not None:
                    return found
        return None

    # ------------------------------------------------------------ resolution

    def resolve(
        self, func: FunctionInfo, call: ast.Call
    ) -> Tuple[List[FunctionInfo], List[ClassInfo]]:
        """(callee functions, constructed classes) for one call site."""
        targets, constructed = self._resolve_callable(func, call.func)
        hot_targets = [t for t in targets if not _matches_cold(self.cold_calls, t)]
        return hot_targets, constructed

    def _resolve_callable(
        self, func: FunctionInfo, callee: ast.AST
    ) -> Tuple[List[FunctionInfo], List[ClassInfo]]:
        targets: List[FunctionInfo] = []
        constructed: List[ClassInfo] = []
        if isinstance(callee, ast.Name):
            self._resolve_name(func, callee.id, targets, constructed)
        elif isinstance(callee, ast.Attribute):
            self._resolve_attribute(func, callee, targets, constructed)
        return targets, constructed

    def _resolve_name(
        self,
        func: FunctionInfo,
        name: str,
        targets: List[FunctionInfo],
        constructed: List[ClassInfo],
    ) -> None:
        module = func.module
        alias = self._local_alias_expr(func, name)
        if alias is not None:
            alias_targets, alias_constructed = self._resolve_callable(func, alias)
            targets.extend(alias_targets)
            constructed.extend(alias_constructed)
            if alias_targets or alias_constructed:
                return
        local = self.index.module_functions.get((module.name, name))
        if local is not None:
            targets.append(local)
            return
        cls = _class_by_local_name(self.index, module, name)
        if cls is not None:
            constructed.append(cls)
            return
        imported = module.imports.get(name)
        if imported is not None:
            info = self.index.functions.get(imported)
            if info is not None:
                targets.append(info)

    def _local_alias_expr(self, func: FunctionInfo, name: str) -> Optional[ast.AST]:
        for stmt in ast.walk(func.node):
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if (
                    isinstance(target, ast.Name)
                    and target.id == name
                    and isinstance(stmt.value, (ast.Attribute, ast.IfExp))
                ):
                    return stmt.value
        return None

    def _resolve_attribute(
        self,
        func: FunctionInfo,
        callee: ast.Attribute,
        targets: List[FunctionInfo],
        constructed: List[ClassInfo],
    ) -> None:
        if isinstance(callee, ast.IfExp):  # pragma: no cover - defensive
            return
        attr = callee.attr
        env = self._local_env(func)
        owner = self._owning_class(func)

        # ``self.alias(...)`` where the alias was bound to a method elsewhere
        # in the class (``self._translate = self.page_table.translate``).
        # Alias expressions are resolved in the environment of the method
        # that bound them (``__init__`` for hoisted bound methods), where
        # parameter annotations type the receiver.
        if _is_self_attr(callee) and owner is not None:
            resolved_via_alias = False
            for expr in self._alias_exprs(owner, attr):
                branches = (
                    [expr.body, expr.orelse] if isinstance(expr, ast.IfExp) else [expr]
                )
                for branch in branches:
                    if not isinstance(branch, ast.Attribute) or branch is callee:
                        continue
                    defining = owner.methods.get("__init__", func)
                    sub_targets: List[FunctionInfo] = []
                    self._resolve_attribute(defining, branch, sub_targets, constructed)
                    if sub_targets:
                        targets.extend(sub_targets)
                        resolved_via_alias = True
            if resolved_via_alias:
                return

        receiver_type = self._infer_expr(callee.value, env, func)
        if isinstance(receiver_type, ListOf):
            receiver_type = None
        if isinstance(receiver_type, ClassInfo):
            method = self._lookup_method(receiver_type, attr)
            if method is not None:
                targets.append(method)
                # Polymorphism: every analyzed subclass override is a
                # possible callee (``self.scheme.access`` -> each scheme).
                for subclass in self.index.subclasses_of(receiver_type):
                    override = subclass.methods.get(attr)
                    if override is not None:
                        targets.append(override)
                return
            return  # typed receiver without such a method: external/protocol

        if isinstance(callee.value, ast.Name):
            # Module-qualified calls (heapq.heappush, math.log): resolve via
            # imports; external modules contribute no edges.
            imported = func.module.imports.get(callee.value.id)
            if imported is not None:
                qualified = f"{imported}.{attr}"
                info = self.index.functions.get(qualified)
                cls = self.index.classes.get(qualified)
                if info is not None:
                    targets.append(info)
                elif cls is not None:
                    constructed.append(cls)
                return

        if attr in _GENERIC_METHODS:
            return  # untyped container-protocol call: not an edge
        targets.extend(self.index.methods_by_name.get(attr, []))

    def _alias_exprs(self, owner: ClassInfo, attr: str) -> List[ast.AST]:
        exprs = list(owner.alias_exprs.get(attr, []))
        for base_name in owner.base_names:
            for base in self.index.classes_by_name.get(base_name, []):
                exprs.extend(base.alias_exprs.get(attr, []))
        return exprs

    def _owning_class(self, func: FunctionInfo) -> Optional[ClassInfo]:
        if not func.class_name:
            return None
        return self.index.classes.get(f"{func.module.name}.{func.class_name}")

    def _lookup_method(
        self, owner: ClassInfo, name: str, depth: int = 0
    ) -> Optional[FunctionInfo]:
        if name in owner.methods:
            return owner.methods[name]
        if depth >= 4:
            return None
        for base_name in owner.base_names:
            for base in self.index.classes_by_name.get(base_name, []):
                found = self._lookup_method(base, name, depth + 1)
                if found is not None:
                    return found
        return None


# --------------------------------------------------------------------------- hot reachability


def _annotation_node_ids(func_or_region: ast.AST) -> Set[int]:
    """ids of annotation subtree roots (never executed per record)."""
    ids: Set[int] = set()
    for node in ast.walk(func_or_region):
        if isinstance(node, _FUNCTION_NODES):
            args = node.args
            for arg in list(args.args) + list(args.kwonlyargs) + list(args.posonlyargs):
                if arg.annotation is not None:
                    ids.add(id(arg.annotation))
            if args.vararg is not None and args.vararg.annotation is not None:
                ids.add(id(args.vararg.annotation))
            if args.kwarg is not None and args.kwarg.annotation is not None:
                ids.add(id(args.kwarg.annotation))
            if node.returns is not None:
                ids.add(id(node.returns))
        elif isinstance(node, ast.AnnAssign):
            ids.add(id(node.annotation))
    return ids


@dataclass
class HotSpan:
    """A region of one function that can execute once per trace record.

    ``region`` is the whole function node for fully-hot functions, or a loop
    node for marker-scoped roots (only the record loop of ``Engine.run`` is
    hot, not its setup prologue).
    """

    function: FunctionInfo
    region: ast.AST
    chain: str  #: "callee <- caller <- ... <- root" provenance for messages

    def walk_region(self) -> Iterator[ast.AST]:
        """Region nodes, excluding annotations and nested function bodies.

        A nested ``def``/``lambda`` *creation* is itself a hot-path finding;
        its body only runs if called, which the call graph tracks separately.
        Annotation subtrees are type syntax, not per-record execution.
        """
        skip = _annotation_node_ids(self.region)
        stack: List[ast.AST] = [self.region]
        first = True
        while stack:
            node = stack.pop()
            if id(node) in skip:
                continue
            if not first and isinstance(node, _FUNCTION_NODES + (ast.Lambda,)):
                yield node  # report the creation, do not descend
                continue
            first = False
            yield node
            stack.extend(ast.iter_child_nodes(node))


@dataclass
class HotGraph:
    spans: List[HotSpan]
    #: Constructor calls found in hot regions: (span, call node, class).
    constructions: List[Tuple[HotSpan, ast.Call, ClassInfo]]
    #: Classes owning at least one hot method (for attribute/slots checks).
    hot_classes: Set[str]


def _marker_roots(module: Module) -> List[Tuple[ast.AST, ast.AST]]:
    """(function node, region node) pairs for each hotpath marker in source."""
    marker_lines = [
        lineno
        for lineno, line in enumerate(module.lines, start=1)
        if HOTPATH_MARKER in line
    ]
    roots: List[Tuple[ast.AST, ast.AST]] = []
    for lineno in marker_lines:
        best: Optional[ast.AST] = None
        for node in ast.walk(module.tree):
            if not isinstance(node, _FUNCTION_NODES + _LOOP_NODES):
                continue
            # Marker trails the statement line or sits on its own line above.
            if getattr(node, "lineno", -1) in (lineno, lineno + 1):
                best = node
                break
        if best is None:
            continue
        if isinstance(best, _FUNCTION_NODES):
            roots.append((best, best))
        else:
            owner = next(
                (a for a in module.ancestors(best) if isinstance(a, _FUNCTION_NODES)),
                None,
            )
            if owner is not None:
                roots.append((owner, best))
    return roots


def _inside_raise(module: Module, node: ast.AST) -> bool:
    for ancestor in module.ancestors(node):
        if isinstance(ancestor, ast.Raise):
            return True
        if isinstance(ancestor, _FUNCTION_NODES):
            break
    return False


def hot_graph(context: AnalysisContext) -> HotGraph:
    """Compute (and memoise) hot-path reachability for this context."""
    cached = context.cache.get("hot_graph")
    if isinstance(cached, HotGraph):
        return cached
    index = build_index(context)
    resolver = CallResolver(index, context.config.hotpath_cold_calls)

    queue: List[HotSpan] = []
    for suffix in context.config.hotpath_roots:
        for qualname, info in index.functions.items():
            if qualname == suffix or qualname.endswith("." + suffix):
                queue.append(HotSpan(info, info.node, qualname))
    for module in context.modules:
        for func_node, region in _marker_roots(module):
            info = next(
                (f for f in index.functions.values() if f.node is func_node), None
            )
            if info is not None:
                queue.append(HotSpan(info, region, info.qualname))

    graph = HotGraph(spans=[], constructions=[], hot_classes=set())
    seen: Set[Tuple[str, int]] = set()
    while queue:
        span = queue.pop()
        key = (span.function.qualname, getattr(span.region, "lineno", 0))
        if key in seen:
            continue
        seen.add(key)
        graph.spans.append(span)
        if span.function.class_name:
            owner = f"{span.function.module.name}.{span.function.class_name}"
            graph.hot_classes.add(owner)
        for node in span.walk_region():
            if not isinstance(node, ast.Call):
                continue
            targets, constructed = resolver.resolve(span.function, node)
            for target in targets:
                queue.append(
                    HotSpan(target, target.node, f"{target.qualname} <- {span.chain}")
                )
            for cls in constructed:
                if _inside_raise(span.function.module, node):
                    continue  # error-path constructions (exceptions) are exempt
                graph.constructions.append((span, node, cls))
                init = cls.methods.get("__init__")
                if init is not None:
                    queue.append(
                        HotSpan(init, init.node, f"{init.qualname} <- {span.chain}")
                    )
    context.cache["hot_graph"] = graph
    return graph
