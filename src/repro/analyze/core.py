"""Core of the static-analysis subsystem: findings, rules, module loading.

The analyzer proves the repo's structural invariants at the AST level — the
guarantees the goldens and A/B benchmarks only check *dynamically*:

* the per-record hot path allocates nothing (:mod:`repro.analyze.rules.hotpath`);
* simulation packages never read wall clocks or unseeded RNGs
  (:mod:`repro.analyze.rules.determinism`);
* every ``to_dict`` key has a consuming ``from_dict`` and every emitted event
  matches the schema (:mod:`repro.analyze.rules.serde`);
* declared variants name real configuration fields
  (:mod:`repro.analyze.rules.variants`).

Rules are plain functions registered with :func:`register_rule`; each
receives an :class:`AnalysisContext` (every parsed module plus the analyzer
configuration) and returns :class:`Finding` objects.  Findings can be
suppressed inline with ``# repro: allow[rule]`` (same line or the line
above) or grandfathered via a committed baseline file
(:mod:`repro.analyze.baseline`).
"""

from __future__ import annotations

import ast
import hashlib
import os
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Set

from repro.analyze.config import AnalyzerConfig, DEFAULT_CONFIG

#: Matches ``# repro: allow[rule]`` / ``# repro: allow[rule-a, rule-b]`` / ``allow[*]``.
_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([^\]]+)\]")

#: Marks a hot-path root: on a ``def`` line the whole function is hot, on a
#: loop statement only the loop body is (see :mod:`repro.analyze.callgraph`).
HOTPATH_MARKER = "# repro: hotpath"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str          #: display path (relative to the invocation cwd when possible)
    module: str        #: dotted module name — stable across checkouts, used for identity
    line: int
    col: int
    message: str
    symbol: str = ""   #: enclosing function/class qualname, when known

    @property
    def fingerprint(self) -> str:
        """Location-insensitive identity used by the baseline file.

        Line/column are excluded so unrelated edits above a grandfathered
        finding do not invalidate the baseline entry.
        """
        raw = "|".join((self.rule, self.module, self.symbol, self.message))
        return hashlib.sha256(raw.encode("utf-8")).hexdigest()[:16]

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "module": self.module,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "symbol": self.symbol,
            "fingerprint": self.fingerprint,
        }

    def render(self) -> str:
        location = f"{self.path}:{self.line}:{self.col}"
        symbol = f" [{self.symbol}]" if self.symbol else ""
        return f"{location}: {self.rule}: {self.message}{symbol}"


class Module:
    """One parsed source file: AST, source lines, suppressions, imports."""

    def __init__(self, path: Path, name: str, source: str) -> None:
        self.path = path
        self.name = name
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=str(path))
        self.suppressions = _parse_suppressions(self.lines)
        self.imports = _parse_imports(self.tree)
        self._parents: Optional[Dict[int, ast.AST]] = None

    @property
    def display_path(self) -> str:
        """Path relative to the cwd when under it, else absolute."""
        try:
            return os.path.relpath(self.path)
        except ValueError:  # pragma: no cover - different drive on Windows
            return str(self.path)

    def parent_of(self, node: ast.AST) -> Optional[ast.AST]:
        if self._parents is None:
            parents: Dict[int, ast.AST] = {}
            for parent in ast.walk(self.tree):
                for child in ast.iter_child_nodes(parent):
                    parents[id(child)] = parent
            self._parents = parents
        return self._parents.get(id(node))

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current = self.parent_of(node)
        while current is not None:
            yield current
            current = self.parent_of(current)

    def is_suppressed(self, finding: Finding) -> bool:
        """True when an ``allow`` comment covers ``finding``'s rule.

        Both the finding's own line and the line directly above count, so a
        suppression can ride the flagged statement or sit on its own line.
        """
        for line in (finding.line, finding.line - 1):
            allowed = self.suppressions.get(line)
            if not allowed:
                continue
            if "*" in allowed or finding.rule in allowed:
                return True
            if any(finding.rule.startswith(prefix + "-") for prefix in allowed):
                return True
        return False

    def finding(
        self, rule: str, node: ast.AST, message: str, symbol: str = ""
    ) -> Finding:
        return Finding(
            rule=rule,
            path=self.display_path,
            module=self.name,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            message=message,
            symbol=symbol,
        )


def _parse_suppressions(lines: Sequence[str]) -> Dict[int, Set[str]]:
    suppressions: Dict[int, Set[str]] = {}
    for index, line in enumerate(lines, start=1):
        match = _ALLOW_RE.search(line)
        if match:
            rules = {token.strip() for token in match.group(1).split(",") if token.strip()}
            if rules:
                suppressions[index] = rules
    return suppressions


def _parse_imports(tree: ast.Module) -> Dict[str, str]:
    """Map local names to the dotted names they import.

    ``import numpy as np`` maps ``np -> numpy``; ``from time import time``
    maps ``time -> time.time``.  Used to resolve attribute chains like
    ``np.random.default_rng`` to canonical dotted names.
    """
    imports: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                imports[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
                if alias.asname:
                    imports[alias.asname] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                imports[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return imports


def dotted_name(node: ast.AST, imports: Dict[str, str]) -> Optional[str]:
    """Resolve an attribute chain to a canonical dotted name, if possible.

    ``np.random.default_rng`` with ``np -> numpy`` yields
    ``numpy.random.default_rng``; a bare imported name yields its import
    target.  Chains rooted anywhere else (locals, ``self``) yield ``None``.
    """
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    root = imports.get(current.id)
    if root is None:
        return None
    parts.append(root)
    return ".".join(reversed(parts))


class AnalysisContext:
    """Everything a rule sees: parsed modules plus the configuration."""

    def __init__(self, modules: List[Module], config: AnalyzerConfig) -> None:
        self.modules = modules
        self.config = config
        self.by_name: Dict[str, Module] = {module.name: module for module in modules}
        #: Scratch space for cross-rule memoisation (the call graph lives here).
        self.cache: Dict[str, object] = {}

    def modules_under(self, package_prefixes: Sequence[str]) -> List[Module]:
        selected = []
        for module in self.modules:
            if any(
                module.name == prefix or module.name.startswith(prefix + ".")
                for prefix in package_prefixes
            ):
                selected.append(module)
        return selected


# --------------------------------------------------------------------------- rule registry

RuleFunc = Callable[[AnalysisContext], List[Finding]]


@dataclass(frozen=True)
class Rule:
    name: str
    description: str
    check: RuleFunc = field(compare=False)


RULES: Dict[str, Rule] = {}


def register_rule(name: str, description: str) -> Callable[[RuleFunc], RuleFunc]:
    """Register a rule function under ``name`` (the pluggable extension point)."""

    def decorator(func: RuleFunc) -> RuleFunc:
        if name in RULES:
            raise ValueError(f"rule {name!r} already registered")
        RULES[name] = Rule(name=name, description=description, check=func)
        return func

    return decorator


def all_rules() -> Dict[str, Rule]:
    _ensure_rules_loaded()
    return dict(RULES)


def _ensure_rules_loaded() -> None:
    # Importing the rules package runs every @register_rule decorator.
    import repro.analyze.rules  # noqa: F401


# --------------------------------------------------------------------------- loading / running


def module_name_for(path: Path) -> str:
    """Dotted module name derived from the package layout on disk.

    Walks up while ``__init__.py`` exists, so ``src/repro/sim/engine.py``
    becomes ``repro.sim.engine`` regardless of the invocation directory;
    files outside any package (test fixtures) use their bare stem.
    """
    path = path.resolve()
    parts = [path.stem] if path.stem != "__init__" else []
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        parent = parent.parent
    if not parts:
        parts = [path.stem]
    return ".".join(reversed(parts))


def load_modules(paths: Sequence) -> List[Module]:
    """Parse every ``.py`` file under ``paths`` (files or directories)."""
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
        else:
            raise FileNotFoundError(f"not a Python file or directory: {path}")
    modules = []
    for file_path in files:
        source = file_path.read_text(encoding="utf-8")
        modules.append(Module(file_path, module_name_for(file_path), source))
    return modules


def run_analysis(
    paths: Sequence,
    rules: Optional[Iterable[str]] = None,
    config: Optional[AnalyzerConfig] = None,
) -> List[Finding]:
    """Run ``rules`` (default: all) over ``paths``; returns unsuppressed findings."""
    _ensure_rules_loaded()
    config = config or DEFAULT_CONFIG
    selected = list(rules) if rules is not None else sorted(RULES)
    unknown = [name for name in selected if name not in RULES]
    if unknown:
        raise ValueError(f"unknown rules {unknown}; available: {sorted(RULES)}")
    context = AnalysisContext(load_modules(paths), config)
    findings: List[Finding] = []
    for name in selected:
        for finding in RULES[name].check(context):
            module = context.by_name.get(finding.module)
            if module is not None and module.is_suppressed(finding):
                continue
            findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule, f.message))
    return findings
