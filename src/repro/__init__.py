"""repro — a reproduction of Banshee: Bandwidth-Efficient DRAM Caching
Via Software/Hardware Cooperation (Yu et al., MICRO 2017).

The package provides:

* a trace-driven multicore memory-system simulator (:mod:`repro.sim`,
  :mod:`repro.dram`, :mod:`repro.cache`, :mod:`repro.vm`, :mod:`repro.cpu`),
* the Banshee DRAM-cache design (:mod:`repro.core`) and the baselines it is
  compared against (:mod:`repro.dramcache`),
* the workload generators of the paper's evaluation (:mod:`repro.workloads`),
* an experiment harness that regenerates every table and figure
  (:mod:`repro.experiments`),
* and a parallel, resumable campaign subsystem with a persistent result
  store and a ``python -m repro.campaign`` CLI (:mod:`repro.campaign`).

Quickstart::

    from repro import SystemConfig, run_simulation

    config = SystemConfig.scaled_default(scheme="banshee")
    result = run_simulation(config, workload_name="pagerank", records_per_core=20_000)
    print(result.summary())
"""

from repro.experiments.runner import run_simulation
from repro.sim.config import (
    CacheLevelConfig,
    CoreConfig,
    DramCacheConfig,
    DramConfig,
    DramTimingConfig,
    SystemConfig,
    TlbConfig,
)
from repro.sim.engine import SimulationEngine
from repro.sim.results import SimulationResults, geometric_mean
from repro.sim.system import System
from repro.workloads.registry import EVALUATION_WORKLOADS, available_workloads, get_workload

__version__ = "1.0.0"

__all__ = [
    "run_simulation",
    "CacheLevelConfig",
    "CoreConfig",
    "DramCacheConfig",
    "DramConfig",
    "DramTimingConfig",
    "SystemConfig",
    "TlbConfig",
    "SimulationEngine",
    "SimulationResults",
    "geometric_mean",
    "System",
    "EVALUATION_WORKLOADS",
    "available_workloads",
    "get_workload",
    "__version__",
]
